"""Drive-level pipeline: successive rounds over a frame sequence.

Figure 7 of the paper: processing is organized in rounds, each round
searching the newest frame against the previous frame's tree while
building the newest frame's own tree.  :func:`run_drive` executes a
whole drive through an accelerator and aggregates per-round reports
into drive-level statistics (sustained FPS, total traffic, worst-case
latency) — what a perception stack integrating QuickNN would size
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.arch.params import CORE_CLOCK_HZ
from repro.arch.quicknn import QuickNN
from repro.arch.report import FrameReport
from repro.geometry import PointCloud
from repro.kdtree.search import QueryResult


@dataclass(frozen=True)
class PipelineResult:
    """Aggregate outcome of a multi-frame drive."""

    reports: tuple[FrameReport, ...]
    results: tuple[QueryResult, ...]

    @property
    def n_rounds(self) -> int:
        return len(self.reports)

    @property
    def total_cycles(self) -> int:
        return sum(r.total_cycles for r in self.reports)

    @property
    def sustained_fps(self) -> float:
        """Throughput over the whole drive at the 100 MHz core clock."""
        if self.total_cycles == 0:
            return 0.0
        return self.n_rounds * CORE_CLOCK_HZ / self.total_cycles

    @property
    def worst_latency_ms(self) -> float:
        return max(r.latency_ms for r in self.reports)

    @property
    def total_memory_words(self) -> int:
        return sum(r.memory_words for r in self.reports)

    def fps_per_round(self) -> np.ndarray:
        return np.array([r.fps for r in self.reports])

    def meets_frame_rate(self, fps: float = 10.0) -> bool:
        """Whether *every* round keeps up with the sensor's frame rate.

        Most modern LiDARs produce >=10 frames per second (Section 6.2),
        so this is the paper's real-time criterion applied per round.
        """
        return all(r.fps >= fps for r in self.reports)

    def overlapped_throughput_fps(self) -> float:
        """Steady-state throughput with TBuild/TSearch round overlap.

        Figure 7 pipelines rounds: while TSearch searches frame ``t``,
        TBuild already processes frame ``t+1``'s sampling/construction.
        In steady state the frame *period* is therefore bounded below by
        each engine's own busy time and by the shared memory interface,
        not by their sum — per-round latency stays ``total_cycles``, but
        sustained throughput improves.  This estimator recomputes the
        per-round period as ``max(tbuild_busy + sample + construct,
        tsearch_busy, mem_busy)`` from the notes each report carries.
        """
        periods = []
        for r in self.reports:
            build_front = r.phase_cycles.get("sample", 0) + r.phase_cycles.get("construct", 0)
            tbuild = r.notes.get("tbuild_busy", 0.0) + build_front
            tsearch = r.notes.get("tsearch_busy", 0.0)
            mem = r.notes.get("mem_busy", 0.0) + r.phase_cycles.get("sample", 0)
            periods.append(max(tbuild, tsearch, mem, 1.0))
        mean_period = float(np.mean(periods))
        return CORE_CLOCK_HZ / mean_period


def run_drive(
    accel: QuickNN,
    frames: Sequence[PointCloud],
    k: int = 8,
    *,
    rng: np.random.Generator | None = None,
) -> PipelineResult:
    """Run a frame sequence through the steady-state round pipeline.

    Round ``i`` searches ``frames[i]`` against ``frames[i-1]``'s tree
    while TBuild processes ``frames[i]`` — exactly the data sharing of
    Figure 7.  Needs at least two frames.
    """
    if len(frames) < 2:
        raise ValueError("a drive needs at least two frames")
    rng = rng or np.random.default_rng(0)
    reports: list[FrameReport] = []
    results: list[QueryResult] = []
    for reference, query in zip(frames, frames[1:]):
        result, report = accel.run(reference, query, k, rng=rng)
        reports.append(report)
        results.append(result)
    return PipelineResult(reports=tuple(reports), results=tuple(results))
