"""Bucket-block storage in simulated DRAM (Section 4.1, Figure 5).

Buckets live in external memory as *bucket blocks*: fixed-length
contiguous chunks, each holding up to ``block_points`` points plus a
link word pointing at the next block of the same bucket (or an end
token).  Keeping blocks contiguous is what turns bucket reads and
gathered writes into efficient bursts; linking handles buckets that
outgrow one block during placement.

The on-chip *bucket cache* of the paper is the ``bucket_map`` here: the
bucket-id -> first-block-address table that leaf nodes point into.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import POINT_BYTES
from repro.sim.address import AddressAllocator, Region

#: Bytes of the next-block link word (or end token) at the head of a block.
LINK_BYTES = 8


@dataclass(frozen=True)
class BlockSpan:
    """One physical (address, nbytes) span of a bucket access."""

    addr: int
    nbytes: int


class BucketBlockStore:
    """Allocates and addresses bucket blocks inside a DRAM region.

    Parameters
    ----------
    allocator:
        The DRAM address allocator to carve the block pool from.
    n_buckets:
        Number of leaf buckets in the tree.
    block_points:
        Point capacity of one block.  The paper sizes it "large enough
        to accommodate the size of a common bucket"; QuickNN uses the
        tree's bucket capacity so a typical bucket is a single block.
    pool_blocks:
        Total blocks in the pool; defaults to twice the bucket count so
        skewed frames can chain without exhausting the pool.
    """

    def __init__(
        self,
        allocator: AddressAllocator,
        *,
        n_buckets: int,
        block_points: int,
        pool_blocks: int | None = None,
    ):
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        if block_points < 1:
            raise ValueError("block_points must be positive")
        self.n_buckets = n_buckets
        self.block_points = block_points
        self.block_bytes = LINK_BYTES + block_points * POINT_BYTES
        self.pool_blocks = pool_blocks if pool_blocks is not None else 2 * n_buckets
        if self.pool_blocks < n_buckets:
            raise ValueError("pool must hold at least one block per bucket")
        self.region: Region = allocator.allocate(
            "bucket_blocks", self.pool_blocks * self.block_bytes
        )
        # Every bucket starts with one block; spill blocks come from the tail.
        self._chains: list[list[int]] = [[i] for i in range(n_buckets)]
        self._fills: list[int] = [0] * n_buckets
        self._next_free = n_buckets

    # ------------------------------------------------------------------
    def _block_addr(self, block_id: int) -> int:
        return self.region.addr(block_id * self.block_bytes)

    def append(self, bucket_id: int, count: int) -> list[BlockSpan]:
        """Store ``count`` gathered points into a bucket's chain.

        Returns the physical spans written (one per block touched; a
        flush that crosses into a fresh spill block produces two spans,
        and the link-word update of the previous block is folded into
        its span).
        """
        self._check_bucket(bucket_id)
        if count < 1:
            raise ValueError("append needs at least one point")
        spans: list[BlockSpan] = []
        remaining = count
        while remaining > 0:
            block_id = self._chains[bucket_id][-1]
            # Occupancy of the chain's last block (may be exactly full).
            used = self._fills[bucket_id] - (len(self._chains[bucket_id]) - 1) * self.block_points
            room = self.block_points - used
            if room == 0:
                block_id = self._grow(bucket_id)
                used, room = 0, self.block_points
            take = min(remaining, room)
            offset = LINK_BYTES + used * POINT_BYTES
            spans.append(
                BlockSpan(
                    addr=self._block_addr(block_id) + offset,
                    nbytes=take * POINT_BYTES,
                )
            )
            self._fills[bucket_id] += take
            remaining -= take
        return spans

    def _grow(self, bucket_id: int) -> int:
        if self._next_free >= self.pool_blocks:
            raise RuntimeError("bucket block pool exhausted")
        block_id = self._next_free
        self._next_free += 1
        self._chains[bucket_id].append(block_id)
        return block_id

    def read_spans(self, bucket_id: int) -> list[BlockSpan]:
        """Physical spans of a full bucket read (one burst per block)."""
        self._check_bucket(bucket_id)
        spans = []
        remaining = self._fills[bucket_id]
        for block_id in self._chains[bucket_id]:
            take = min(remaining, self.block_points)
            spans.append(
                BlockSpan(
                    addr=self._block_addr(block_id),
                    nbytes=LINK_BYTES + take * POINT_BYTES,
                )
            )
            remaining -= take
            if remaining <= 0:
                break
        return spans

    def bucket_fill(self, bucket_id: int) -> int:
        self._check_bucket(bucket_id)
        return self._fills[bucket_id]

    def chain_length(self, bucket_id: int) -> int:
        self._check_bucket(bucket_id)
        return len(self._chains[bucket_id])

    @property
    def blocks_used(self) -> int:
        return self._next_free

    def _check_bucket(self, bucket_id: int) -> None:
        if not (0 <= bucket_id < self.n_buckets):
            raise ValueError(f"bucket {bucket_id} out of range [0, {self.n_buckets})")
