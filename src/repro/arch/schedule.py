"""Event-driven scheduler for QuickNN's place+search phase.

The default QuickNN frame model bounds phase 3 by its busiest resource
(``max(memory, TBuild, TSearch)``).  This module provides the more
detailed alternative: a discrete-event simulation of the phase with the
DRAM interface as a single shared server, TBuild's traversal engine and
the FU array as serial compute resources, and the real dependency
chain —

    Rd1 chunk read -> point snooped           -> bucket gather -> Rd3
                   -> point traversed (TBuild) -> Wr1 flush          \\
                                                    FU scan -> Wr2

— so queueing and dependency stalls the analytic model folds into a
``max()`` are simulated explicitly.  The two models are validated
against each other in the test suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamJob:
    """A DRAM write tied to a stream position (a write-gather flush)."""

    point_index: int
    cost: int


@dataclass(frozen=True)
class BucketJob:
    """One gathered-bucket search: Rd3 read, FU scan, Wr2 write-back."""

    point_index: int
    rd3_cost: int
    fu_cost: int
    wr2_cost: int
    kickoff: int


@dataclass(frozen=True)
class Phase3Schedule:
    """Outcome of the event-driven phase simulation."""

    total_cycles: int
    dram_busy: int
    traversal_busy: int
    fu_busy: int

    @property
    def dram_utilization(self) -> float:
        return self.dram_busy / self.total_cycles if self.total_cycles else 0.0


@dataclass
class _Dram:
    """Single-server FIFO memory interface."""

    free_at: int = 0
    busy: int = 0
    queue: list = field(default_factory=list)  # heap of (ready, seq, cost, done_cb)
    _seq: int = 0

    def submit(self, ready: int, cost: int, on_done) -> None:
        heapq.heappush(self.queue, (ready, self._seq, cost, on_done))
        self._seq += 1

    def drain_until_empty(self, events: list) -> None:
        """Serve the next queued job, if any (called when DRAM frees)."""
        if not self.queue:
            return
        ready, _, cost, on_done = heapq.heappop(self.queue)
        start = max(ready, self.free_at)
        done = start + cost
        self.free_at = done
        self.busy += cost
        heapq.heappush(events, (done, _next_event_seq(), on_done))


_EVENT_SEQ = [0]


def _next_event_seq() -> int:
    _EVENT_SEQ[0] += 1
    return _EVENT_SEQ[0]


def schedule_phase3(
    *,
    n_points: int,
    chunk_costs: list[int],
    points_per_chunk: int,
    traversal_cycles_per_point: float,
    wr1_jobs: list[StreamJob],
    bucket_jobs: list[BucketJob],
    rd2_chunk_costs: list[int] | None = None,
) -> Phase3Schedule:
    """Simulate the place+search phase; returns its duration and busy times.

    ``chunk_costs`` are the per-chunk Rd1 service costs (in stream
    order); point ``p`` becomes visible to both engines when chunk
    ``p // points_per_chunk`` completes.  ``rd2_chunk_costs`` (snooping
    disabled) adds a second read stream that gates TSearch instead of
    the snooped Rd1.
    """
    if n_points < 1:
        raise ValueError("need at least one point")
    if points_per_chunk < 1:
        raise ValueError("points_per_chunk must be positive")
    if traversal_cycles_per_point < 0:
        raise ValueError("traversal rate must be non-negative")

    dram = _Dram()
    events: list = []  # heap of (time, seq, callback)

    # Index jobs by the chunk whose completion releases them.
    wr1_by_chunk: dict[int, list[StreamJob]] = {}
    for job in wr1_jobs:
        wr1_by_chunk.setdefault(job.point_index // points_per_chunk, []).append(job)
    bucket_by_chunk: dict[int, list[BucketJob]] = {}
    for job in bucket_jobs:
        bucket_by_chunk.setdefault(job.point_index // points_per_chunk, []).append(job)

    n_chunks = len(chunk_costs)
    trav_free = 0.0
    trav_busy = 0.0
    fu_free = 0
    fu_busy = 0
    finished_at = 0

    def note_time(t: int) -> None:
        nonlocal finished_at
        finished_at = max(finished_at, int(t))

    def on_bucket_read_done(job: BucketJob):
        def callback(now: int) -> None:
            nonlocal fu_free, fu_busy
            start = max(fu_free, now) + job.kickoff
            done = start + job.fu_cost
            fu_free = done
            fu_busy += job.fu_cost + job.kickoff
            note_time(done)
            dram.submit(done, job.wr2_cost, lambda t: note_time(t))
            dram.drain_until_empty(events)
        return callback

    def release_tsearch(chunk: int, now: int) -> None:
        for job in bucket_by_chunk.get(chunk, ()):
            dram.submit(now, job.rd3_cost, on_bucket_read_done(job))
        dram.drain_until_empty(events)

    def on_chunk_done(chunk: int):
        def callback(now: int) -> None:
            nonlocal trav_free, trav_busy
            note_time(now)
            # The streamer self-paces: request the next chunk only once
            # this one lands, letting gather writes and bucket reads
            # interleave with the Rd1 stream at the memory controller.
            if chunk + 1 < n_chunks:
                dram.submit(now, chunk_costs[chunk + 1], on_chunk_done(chunk + 1))
            # TBuild: traverse this chunk's points in order.
            first = chunk * points_per_chunk
            last = min(n_points, first + points_per_chunk)
            span = (last - first) * traversal_cycles_per_point
            start = max(trav_free, now)
            trav_free = start + span
            trav_busy += span
            note_time(trav_free)
            # Write-gather flushes of this chunk become ready once its
            # points have been traversed.
            for job in wr1_by_chunk.get(chunk, ()):
                dram.submit(int(trav_free), job.cost, lambda t: note_time(t))
            # TSearch: snoop the chunk directly off the bus...
            if rd2_chunk_costs is None:
                release_tsearch(chunk, now)
            else:
                # ...or re-read it through its own Rd2 stream first.
                dram.submit(now, rd2_chunk_costs[chunk],
                            lambda t, c=chunk: release_tsearch(c, t))
            dram.drain_until_empty(events)
        return callback

    # Kick off the Rd1 stream with its first chunk; the rest chain.
    if n_chunks:
        dram.submit(0, chunk_costs[0], on_chunk_done(0))
        dram.drain_until_empty(events)

    while events:
        now, _, callback = heapq.heappop(events)
        callback(int(now))
        dram.drain_until_empty(events)

    # Serve any stragglers left in the DRAM queue (submitted but whose
    # completion callbacks create no further work).
    while dram.queue:
        dram.drain_until_empty(events)
        while events:
            now, _, callback = heapq.heappop(events)
            callback(int(now))
            dram.drain_until_empty(events)

    note_time(dram.free_at)
    note_time(int(trav_free))
    note_time(fu_free)
    return Phase3Schedule(
        total_cycles=finished_at,
        dram_busy=dram.busy,
        traversal_busy=int(trav_busy),
        fu_busy=fu_busy,
    )
