"""Write-gather and read-gather caches (Section 4.2 of the paper).

Both caches solve the same problem from opposite directions: the point
stream arrives in *spatial-random* bucket order, but DRAM only performs
well on *grouped* accesses.

* The **write-gather cache** sits in TBuild.  Points destined for the
  same bucket accumulate in one of ``n_slots`` temporary buckets of
  capacity ``slot_capacity`` (the paper's ``w_b`` x ``w_n``); a full
  slot flushes as one contiguous DRAM write.  When every slot is taken,
  the *fullest* slot is evicted to make room.
* The **read-gather cache** sits in TSearch and gathers *query points*
  by target bucket (``r_b`` x ``r_n``); a full slot triggers one burst
  read of the reference bucket, which then serves all gathered queries
  at once through the FU array.

The eviction-fullest policy, slot geometry, and flush semantics follow
Section 4.2; both caches share :class:`GatherCache` since the paper
notes they "operate in a similar way".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.obs import get_registry


@dataclass(frozen=True)
class FlushEvent:
    """One slot flush: ``count`` gathered items bound for ``bucket_id``.

    ``forced`` marks capacity evictions (cache full, fullest slot chosen)
    as opposed to natural full-slot flushes.
    """

    bucket_id: int
    count: int
    forced: bool


@dataclass
class GatherStats:
    """Occupancy statistics of one gather cache."""

    inserts: int = 0
    flushes: int = 0
    forced_flushes: int = 0
    flushed_items: int = 0
    fill_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def mean_fill(self) -> float:
        """Average slot occupancy at flush time."""
        return self.flushed_items / self.flushes if self.flushes else 0.0

    @property
    def mean_fill_at_flush(self) -> float:
        """Deprecated: renamed to :attr:`mean_fill`."""
        warnings.warn(
            "GatherStats.mean_fill_at_flush is deprecated; use "
            "GatherStats.mean_fill (or as_dict()['mean_fill'])",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.mean_fill

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "inserts": self.inserts,
            "flushes": self.flushes,
            "forced_flushes": self.forced_flushes,
            "flushed_items": self.flushed_items,
            "mean_fill": self.mean_fill,
        }


class GatherCache:
    """A bank of ``n_slots`` temporary buckets of ``slot_capacity`` items."""

    #: Subsystem label used for the registry metrics (``cache.<label>.*``).
    obs_label = "gather"

    def __init__(self, n_slots: int, slot_capacity: int):
        if n_slots < 1:
            raise ValueError("gather cache needs at least one slot")
        if slot_capacity < 1:
            raise ValueError("slot capacity must be positive")
        self.n_slots = n_slots
        self.slot_capacity = slot_capacity
        self._fills: dict[int, int] = {}  # bucket_id -> gathered count
        self.stats = GatherStats()
        obs = get_registry()
        if obs.enabled:
            prefix = f"cache.{self.obs_label}"
            self._obs_counters = (
                obs.counter(f"{prefix}.inserts"),
                obs.counter(f"{prefix}.flushes"),
                obs.counter(f"{prefix}.forced_flushes"),
                obs.counter(f"{prefix}.flushed_items"),
            )
        else:
            self._obs_counters = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of slots currently allocated."""
        return len(self._fills)

    def fill_of(self, bucket_id: int) -> int:
        return self._fills.get(bucket_id, 0)

    def insert(self, bucket_id: int) -> list[FlushEvent]:
        """Gather one item for ``bucket_id``; return any flushes it caused.

        At most two events result: a forced eviction that made room for a
        new slot, and/or a natural flush of the now-full slot.
        """
        self.stats.inserts += 1
        if self._obs_counters is not None:
            self._obs_counters[0].inc()
        events: list[FlushEvent] = []
        if bucket_id not in self._fills and len(self._fills) >= self.n_slots:
            fullest = max(self._fills, key=lambda b: (self._fills[b], -b))
            events.append(self._flush(fullest, forced=True))
        self._fills[bucket_id] = self._fills.get(bucket_id, 0) + 1
        if self._fills[bucket_id] >= self.slot_capacity:
            events.append(self._flush(bucket_id, forced=False))
        return events

    def _flush(self, bucket_id: int, *, forced: bool) -> FlushEvent:
        count = self._fills.pop(bucket_id)
        self.stats.flushes += 1
        self.stats.flushed_items += count
        if forced:
            self.stats.forced_flushes += 1
        self.stats.fill_histogram[count] = self.stats.fill_histogram.get(count, 0) + 1
        if self._obs_counters is not None:
            self._obs_counters[1].inc()
            self._obs_counters[3].inc(count)
            if forced:
                self._obs_counters[2].inc()
        return FlushEvent(bucket_id=bucket_id, count=count, forced=forced)

    def drain(self) -> list[FlushEvent]:
        """Flush every remaining slot (end of frame)."""
        events = []
        for bucket_id in sorted(self._fills, key=lambda b: -self._fills[b]):
            events.append(self._flush(bucket_id, forced=False))
        return events

    def process_stream(self, bucket_ids) -> list[FlushEvent]:
        """Run a whole stream of bucket destinations; returns all flushes.

        Convenience for the architecture models: feeds every item through
        :meth:`insert` and finishes with :meth:`drain`.
        """
        events = []
        for bucket_id in bucket_ids:
            events.extend(self.insert(int(bucket_id)))
        events.extend(self.drain())
        return events


class WriteGatherCache(GatherCache):
    """TBuild-side gather of points by destination bucket (w_b x w_n)."""

    obs_label = "write_gather"


class ReadGatherCache(GatherCache):
    """TSearch-side gather of query points by target bucket (r_b x r_n)."""

    obs_label = "read_gather"
