"""Exact-search k-d accelerator: QuickNN's memory system + backtracking.

The paper's abstract claims a "14.5x speedup over a comparable sized
architecture performing an exact search."  This model makes that
comparison concrete: an accelerator with the *same* memory
optimizations as QuickNN (cached tree, bucket blocks, gather caches)
whose TSearch performs the full backtracking search — reading every
bucket whose region could contain a closer neighbor instead of just
the home bucket.

The extra cost is exactly the per-query bucket-visit count of the
functional exact search; the result is 100%-accurate neighbors at a
multiple of the approximate design's bucket traffic and FU work.
"""

from __future__ import annotations

import numpy as np

from repro.arch.bucket_store import BucketBlockStore
from repro.arch.fu import fu_batch_cycles
from repro.arch.params import POINT_BYTES, RESULT_BYTES
from repro.arch.quicknn import QuickNNConfig, _stream_chunks
from repro.arch.report import FrameReport
from repro.arch.sorter import MergeSorter
from repro.arch.traversal import traversal_cycles_estimate
from repro.geometry import PointCloud
from repro.kdtree import build_tree, place_points
from repro.kdtree.search import QueryResult, knn_exact_instrumented
from repro.sim.address import AddressAllocator
from repro.sim.dram import DramModel


class ExactKdArch:
    """QuickNN-sized accelerator running the exact (backtracking) search.

    Reuses :class:`QuickNNConfig`; the difference is entirely in
    TSearch's behavior, so every hardware-budget knob stays comparable.
    """

    def __init__(self, config: QuickNNConfig | None = None):
        self.config = config or QuickNNConfig()

    def run(
        self,
        reference: PointCloud | np.ndarray,
        queries: PointCloud | np.ndarray,
        k: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> tuple[QueryResult, FrameReport]:
        """One round: exact search of ``queries`` against ``reference``."""
        if k < 1:
            raise ValueError("k must be positive")
        cfg = self.config
        rng = rng or np.random.default_rng(0)
        ref = reference.xyz if isinstance(reference, PointCloud) else np.asarray(reference)
        qry = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries)
        n_ref, n_qry = ref.shape[0], qry.shape[0]
        if n_ref == 0 or n_qry == 0:
            raise ValueError("frames must be non-empty")

        # Functional: the true k nearest neighbors plus the bucket-visit
        # profile the backtracking incurred.
        ref_tree, _ = build_tree(ref, cfg.tree, rng=rng)
        result, visits = knn_exact_instrumented(ref_tree, qry, k)

        # TBuild is unchanged from QuickNN: sample, construct, place.
        qry_tree, trace = build_tree(qry, cfg.tree, rng=rng, place=False)
        place_points(qry_tree, trace=trace)

        dram = DramModel(cfg.dram)
        allocator = AddressAllocator()
        frame_region = allocator.allocate("frame", n_qry * POINT_BYTES)
        allocator.allocate("results", n_qry * k * RESULT_BYTES)
        ref_store = BucketBlockStore(
            allocator, n_buckets=len(ref_tree.buckets),
            block_points=cfg.tree.bucket_capacity)
        for bucket_id, members in enumerate(ref_tree.buckets):
            if members.size:
                ref_store.append(bucket_id, int(members.size))

        phase_cycles: dict[str, int] = {}
        compute_cycles: dict[str, int] = {}

        sample_cycles = dram.access_scattered(
            "RdSample", trace.sample_size, POINT_BYTES, write=False)
        phase_cycles["sample"] = sample_cycles
        sorter = MergeSorter(cfg.sorter)
        construct_cycles = sorter.charge_many(trace.sort_sizes)
        compute_cycles["sorter"] = sorter.total_cycles
        phase_cycles["construct"] = construct_cycles

        rd1 = sum(_stream_chunks(dram, "Rd1", frame_region.base,
                                 n_qry * POINT_BYTES, write=False))
        wr1 = dram.access_scattered(
            "Wr1", trace.placement_traversals // cfg.write_gather_capacity + 1,
            cfg.write_gather_capacity * POINT_BYTES, write=True)
        traversal = traversal_cycles_estimate(
            n_qry, qry_tree.depth(),
            n_workers=cfg.n_traversal_workers,
            n_banks=cfg.tree_cache.n_banks,
            replicated_levels=cfg.tree_cache.replicated_levels)
        compute_cycles["traversal"] = traversal

        # Exact TSearch: backtracking multiplies the (query, bucket)
        # visit pairs the read-gather cache must serve.  Gathering still
        # works — visits to the same bucket across queries share one
        # burst read — so the traffic scales with the mean visit count
        # rather than with raw pairs.
        mean_bucket = max(1, n_ref // max(1, len(ref_tree.buckets)))
        total_visits = int(visits.sum())
        r_n = cfg.effective_read_gather_capacity
        n_reads = -(-total_visits // r_n)
        bucket_bytes = 8 + mean_bucket * POINT_BYTES
        rd3 = dram.access_scattered(
            "Rd3", n_reads, bucket_bytes, write=False, hit_fraction=0.25)
        fu_total = n_reads * fu_batch_cycles(r_n, mean_bucket, cfg.n_fus)
        compute_cycles["fu"] = fu_total
        wr2 = dram.access_scattered(
            "Wr2", n_qry, k * RESULT_BYTES, write=True, hit_fraction=0.5)
        kickoff = n_reads * cfg.bucket_kickoff_cycles

        tbuild_busy = max(rd1 + wr1, traversal)
        tsearch_busy = rd3 + wr2 + fu_total + kickoff
        mem_busy = rd1 + wr1 + rd3 + wr2
        phase3 = max(tbuild_busy, tsearch_busy, mem_busy)
        phase_cycles["place+search"] = phase3

        total = sample_cycles + construct_cycles + phase3
        report = FrameReport(
            architecture=f"exact-kd-{cfg.n_fus}fu",
            n_reference=n_ref,
            n_query=n_qry,
            k=k,
            total_cycles=total,
            phase_cycles=phase_cycles,
            compute_cycles=compute_cycles,
            dram=dram.stats,
            notes={
                "mean_buckets_visited": float(visits.mean()),
                "max_buckets_visited": float(visits.max()),
            },
        )
        return result, report
