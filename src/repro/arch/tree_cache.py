"""On-chip tree cache: partial replication + banking (Section 4.3).

Parallel traversal needs the tree nodes close to every worker, but full
per-worker copies are too costly.  The paper's observation: a node at
level ``i`` is touched by a random traversal with probability ``2^-i``,
so only the *upper* levels are hot.  QuickNN therefore

* replicates the top ``replicated_levels`` levels locally in every
  worker (cheap — few nodes), and
* keeps a single copy of the lower levels in a cache split across
  ``n_banks`` banks, each serving one request per cycle.

Three bank-partition schemes from Figure 9a are implemented:

* ``random`` — every lower node lands in a uniformly random bank.
* ``group``  — each subtree hanging off the replicated region goes to
  one bank round-robin (the paper's best performer).
* ``leftright`` — within each group, left children and right children
  go to different banks (the paper's worst performer: bucket skew makes
  one side hotter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.arch.params import BUCKET_MAP_BYTES, TREE_NODE_BYTES
from repro.kdtree.node import KdTree

REPLICATED = -1


class PartitionScheme(str, enum.Enum):
    RANDOM = "random"
    GROUP = "group"
    LEFTRIGHT = "leftright"


@dataclass(frozen=True)
class TreeCacheConfig:
    """Banking geometry of the shared lower-tree cache."""

    n_banks: int = 4
    replicated_levels: int = 3
    scheme: PartitionScheme = PartitionScheme.GROUP

    def __post_init__(self):
        if self.n_banks < 1:
            raise ValueError("need at least one bank")
        if self.replicated_levels < 1:
            raise ValueError("at least the root level must be replicated")


class BankedTreeCache:
    """Bank assignment and size accounting for one tree's node cache."""

    def __init__(
        self,
        tree: KdTree,
        config: TreeCacheConfig | None = None,
        *,
        n_workers: int = 1,
        rng: np.random.Generator | None = None,
    ):
        self.tree = tree
        self.config = config or TreeCacheConfig()
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.n_workers = n_workers
        rng = rng or np.random.default_rng(0)
        self.bank_of = self._assign_banks(rng)

    # ------------------------------------------------------------------
    def _assign_banks(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        tree = self.tree
        banks = np.full(tree.n_nodes, REPLICATED, dtype=np.int64)
        lower = [n for n in tree.nodes if n.depth >= cfg.replicated_levels]
        if not lower:
            return banks

        if cfg.scheme is PartitionScheme.RANDOM:
            for node in lower:
                banks[node.index] = int(rng.integers(0, cfg.n_banks))
            return banks

        # group / leftright need the subtree roots at the boundary level.
        group_of = self._group_roots()
        if cfg.scheme is PartitionScheme.GROUP:
            for node in lower:
                banks[node.index] = group_of[node.index] % cfg.n_banks
        else:  # LEFTRIGHT
            for node in lower:
                parent = tree.nodes[node.index].parent
                is_left = parent != -1 and tree.nodes[parent].left == node.index
                base = 2 * group_of[node.index]
                banks[node.index] = (base + (0 if is_left else 1)) % cfg.n_banks
        return banks

    def _group_roots(self) -> np.ndarray:
        """Map every lower node to the id of its boundary-level subtree."""
        cfg = self.config
        tree = self.tree
        group_of = np.full(tree.n_nodes, -1, dtype=np.int64)
        roots = [
            n.index
            for n in tree.nodes
            if n.depth == cfg.replicated_levels
            or (n.depth < cfg.replicated_levels and n.is_leaf)
        ]
        for g, root in enumerate(sorted(roots)):
            stack = [root]
            while stack:
                index = stack.pop()
                group_of[index] = g
                node = tree.nodes[index]
                if not node.is_leaf:
                    stack.extend((node.left, node.right))
        return group_of

    # ------------------------------------------------------------------
    def is_replicated(self, node_index: int) -> bool:
        return self.bank_of[node_index] == REPLICATED

    @property
    def n_replicated_nodes(self) -> int:
        return int((self.bank_of == REPLICATED).sum())

    @property
    def n_banked_nodes(self) -> int:
        return int((self.bank_of != REPLICATED).sum())

    def bank_loads(self, leaf_visits: np.ndarray | None = None) -> np.ndarray:
        """Nodes (or visit-weighted load) per bank, for balance checks."""
        loads = np.zeros(self.config.n_banks, dtype=np.float64)
        for node in self.tree.nodes:
            bank = self.bank_of[node.index]
            if bank == REPLICATED:
                continue
            loads[bank] += 1.0
        return loads

    def cache_bytes(self) -> int:
        """Total on-chip bytes: per-worker top copies + banked lower tree.

        Includes the bucket-map cache (one entry per leaf), mirroring
        the paper's TBuild/TSearch cache inventories.
        """
        replicated = self.n_replicated_nodes * TREE_NODE_BYTES * self.n_workers
        banked = self.n_banked_nodes * TREE_NODE_BYTES
        bucket_map = self.tree.n_leaves * BUCKET_MAP_BYTES
        return replicated + banked + bucket_map
