"""Simulated DRAM address-space layout.

The architecture models place frames, bucket blocks, and result buffers
at real byte addresses so the DRAM timing model sees the same locality
the hardware would.  :class:`AddressAllocator` is a bump allocator
handing out aligned regions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A contiguous span of simulated DRAM."""

    name: str
    base: int
    size: int

    def __post_init__(self):
        if self.base < 0 or self.size < 0:
            raise ValueError("region base and size must be non-negative")

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Byte address at ``offset`` into the region (bounds checked)."""
        if not (0 <= offset < self.size or (self.size == 0 and offset == 0)):
            raise ValueError(
                f"offset {offset} outside region '{self.name}' of size {self.size}"
            )
        return self.base + offset


class AddressAllocator:
    """Bump allocator over the simulated DRAM address space."""

    def __init__(self, *, alignment: int = 64):
        if alignment < 1:
            raise ValueError("alignment must be positive")
        self.alignment = alignment
        self._cursor = 0
        self.regions: dict[str, Region] = {}

    def allocate(self, name: str, size: int) -> Region:
        """Reserve ``size`` bytes under a unique name."""
        if name in self.regions:
            raise ValueError(f"region '{name}' already allocated")
        if size < 0:
            raise ValueError("size must be non-negative")
        base = -(-self._cursor // self.alignment) * self.alignment
        region = Region(name=name, base=base, size=size)
        self._cursor = region.end
        self.regions[name] = region
        return region

    @property
    def used_bytes(self) -> int:
        return self._cursor
