"""Transaction-level hardware simulation substrate.

The paper evaluates RTL co-simulated with a custom SystemVerilog DDR4
model; this package is the Python equivalent: a DDR4 bank/row-buffer
timing model (:class:`DramModel`) with per-stream traffic accounting
(:class:`StreamStats`), plus the address-space allocator the
architecture models use to lay out frames, buckets, and result buffers
in the simulated DRAM.

Cycle units everywhere are *core clock cycles* of the accelerator
(100 MHz, 10 ns, as in the FPGA prototype), so latency-in-cycles maps
to wall time by a factor of 10 ns.
"""

from repro.sim.address import AddressAllocator, Region
from repro.sim.dram import DramModel, DramStats, DramTimingParams, StreamStats, TraceEntry

__all__ = [
    "AddressAllocator",
    "DramModel",
    "DramStats",
    "DramTimingParams",
    "Region",
    "StreamStats",
    "TraceEntry",
]
