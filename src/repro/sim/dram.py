"""DDR4 external-memory timing model.

The central substrate of the reproduction: every architecture result in
the paper is a consequence of how this memory behaves.  The model
captures the three DDR4 properties the paper's optimizations exploit:

* **Bursts are cheap** — once a row is open, data moves at the full
  interface rate (here 8 bytes per core cycle, a 64-bit interface as in
  the FPGA prototype).
* **Row misses are expensive** — touching a new row in a bank costs
  precharge + activate + CAS before any data moves.
* **Direction turnarounds cost** — switching the bus between reads and
  writes inserts dead cycles.

Timing constants are expressed in 10 ns core cycles and derived from a
representative DDR4-2400 datasheet (tRP = tRCD = CL ~= 13.75 ns each,
plus controller overhead), matching the paper's "custom model of the
external DRAM ... based on a representative DDR4 RAM chip".

The model is *transaction level*: :meth:`DramModel.access` charges the
cycles one access costs given the current bank/row state and updates
per-stream statistics.  It does not model command-bus scheduling or
refresh — second-order effects that shift absolute numbers, not the
sequential-vs-random contrast the paper's results rest on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.obs import get_registry


@dataclass(frozen=True)
class DramTimingParams:
    """Timing and geometry of the external DRAM, in core cycles.

    ``row_miss_cycles`` bundles precharge + activate + first CAS
    (~120 ns); ``row_hit_cycles`` is the CAS-only cost of a new burst
    within an open row; ``turnaround_cycles`` is the read/write bus
    reversal penalty.
    """

    bytes_per_cycle: int = 8
    n_banks: int = 16
    row_bytes: int = 8192
    row_miss_cycles: int = 12
    row_hit_cycles: int = 2
    turnaround_cycles: int = 4

    def __post_init__(self):
        if self.bytes_per_cycle < 1:
            raise ValueError("bytes_per_cycle must be positive")
        if self.n_banks < 1:
            raise ValueError("n_banks must be positive")
        if self.row_bytes < self.bytes_per_cycle:
            raise ValueError("row_bytes must hold at least one beat")
        if min(self.row_miss_cycles, self.row_hit_cycles, self.turnaround_cycles) < 0:
            raise ValueError("timing penalties must be non-negative")

    def transfer_cycles(self, nbytes: int) -> int:
        """Pure data-movement cycles for ``nbytes`` (ceiling division)."""
        return -(-nbytes // self.bytes_per_cycle)

    @classmethod
    def ddr4(cls) -> "DramTimingParams":
        """The prototype's DDR4 interface (the default parameters)."""
        return cls()

    @classmethod
    def hbm2(cls) -> "DramTimingParams":
        """A near-chip HBM stack, per the paper's Section 7.2 outlook.

        One HBM2 stack behind the 100 MHz core: ~8x the interface
        bandwidth of the DDR4 channel, many more banks (8 channels x 16
        banks), smaller rows, and comparable latency — the configuration
        the paper expects to relieve the external-bandwidth bottleneck
        for 100k-1M point frames.
        """
        return cls(
            bytes_per_cycle=64,
            n_banks=128,
            row_bytes=2048,
            row_miss_cycles=12,
            row_hit_cycles=2,
            turnaround_cycles=2,
        )


@dataclass
class StreamStats:
    """Traffic accounting for one named memory stream (Rd1, Wr1, ...)."""

    name: str
    accesses: int = 0
    bytes: int = 0
    data_cycles: int = 0
    overhead_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.data_cycles + self.overhead_cycles

    @property
    def words(self) -> int:
        """Bus-word count (8-byte words), the unit of Figure 12."""
        return -(-self.bytes // 8)

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "accesses": self.accesses,
            "bytes": self.bytes,
            "words": self.words,
            "data_cycles": self.data_cycles,
            "overhead_cycles": self.overhead_cycles,
            "total_cycles": self.total_cycles,
        }


@dataclass
class DramStats:
    """Aggregate traffic over all streams of one model instance."""

    streams: dict[str, StreamStats] = field(default_factory=dict)

    def stream(self, name: str) -> StreamStats:
        if name not in self.streams:
            self.streams[name] = StreamStats(name=name)
        return self.streams[name]

    @property
    def accesses(self) -> int:
        return sum(s.accesses for s in self.streams.values())

    @property
    def bytes(self) -> int:
        return sum(s.bytes for s in self.streams.values())

    @property
    def data_cycles(self) -> int:
        return sum(s.data_cycles for s in self.streams.values())

    @property
    def overhead_cycles(self) -> int:
        return sum(s.overhead_cycles for s in self.streams.values())

    @property
    def busy_cycles(self) -> int:
        """Total cycles the memory interface was occupied."""
        return self.data_cycles + self.overhead_cycles

    @property
    def words(self) -> int:
        return sum(s.words for s in self.streams.values())

    def as_dict(self) -> dict:
        """Flat scalar view, streams nested as ``streams.<name>.<key>``."""
        out = {
            "accesses": self.accesses,
            "bytes": self.bytes,
            "words": self.words,
            "data_cycles": self.data_cycles,
            "overhead_cycles": self.overhead_cycles,
            "busy_cycles": self.busy_cycles,
        }
        for name, stream in sorted(self.streams.items()):
            for key, value in stream.as_dict().items():
                out[f"streams.{name}.{key}"] = value
        return out

    def bandwidth_utilization(self, total_cycles: int | None = None) -> float:
        """Fraction of cycles spent moving data.

        With no argument, utilization is measured against the interface
        busy time (efficiency of the access pattern).  Given the frame's
        ``total_cycles``, it is measured against wall time, which is the
        quantity Figure 13 reports.
        """
        denom = self.busy_cycles if total_cycles is None else total_cycles
        if denom <= 0:
            return 0.0
        return min(1.0, self.data_cycles / denom)


@dataclass(frozen=True)
class TraceEntry:
    """One recorded transaction (when tracing is enabled)."""

    stream: str
    addr: int
    nbytes: int
    write: bool
    cycles: int


class DramModel:
    """Stateful DDR4 transaction model.

    Addresses are plain byte addresses; bank and row are derived with
    row-interleaved mapping (consecutive rows rotate across banks), the
    layout that makes large sequential bursts stream at full rate.

    With ``trace=True`` every individual transaction is recorded in
    :attr:`trace` (bulk :meth:`access_scattered` charges appear as one
    summary entry with address ``-1``), which the tests and debugging
    tools use to inspect access ordering.
    """

    def __init__(self, params: DramTimingParams | None = None, *, trace: bool = False):
        self.params = params or DramTimingParams()
        self.stats = DramStats()
        self.trace: list[TraceEntry] | None = [] if trace else None
        self._open_rows: dict[int, int] = {}
        self._last_was_write: bool | None = None
        self._next_addr: int | None = None  # address right after the last access
        # When observability is on at construction time, mirror the
        # aggregate counters into the process registry (dram.*).  The
        # counter handles are cached so the per-access cost is four
        # increments; with observability off the hot path is untouched.
        obs = get_registry()
        if obs.enabled:
            self._obs_counters = (
                obs.counter("dram.accesses"),
                obs.counter("dram.bytes"),
                obs.counter("dram.data_cycles"),
                obs.counter("dram.overhead_cycles"),
            )
        else:
            self._obs_counters = None

    # ------------------------------------------------------------------
    def _bank_and_row(self, addr: int) -> tuple[int, int]:
        row = addr // self.params.row_bytes
        return row % self.params.n_banks, row

    def access(self, stream: str, addr: int, nbytes: int, *, write: bool) -> int:
        """Charge one access; returns the cycles it cost.

        A single logical access may span several rows; each row boundary
        re-evaluates the open-row state, so large transfers pay one miss
        per row at most.
        """
        if addr < 0:
            raise ValueError("address must be non-negative")
        if nbytes <= 0:
            raise ValueError("access must move at least one byte")
        rec = self.stats.stream(stream)
        params = self.params

        overhead = 0
        if self._last_was_write is not None and self._last_was_write != write:
            overhead += params.turnaround_cycles
        self._last_was_write = write

        contiguous = self._next_addr == addr
        remaining = nbytes
        cursor = addr
        while remaining > 0:
            bank, row = self._bank_and_row(cursor)
            in_row = min(remaining, params.row_bytes - cursor % params.row_bytes)
            if self._open_rows.get(bank) != row:
                overhead += params.row_miss_cycles
                self._open_rows[bank] = row
            elif not contiguous:
                overhead += params.row_hit_cycles
            cursor += in_row
            remaining -= in_row
            contiguous = True  # subsequent spans of the same access stream on

        data = params.transfer_cycles(nbytes)
        self._next_addr = addr + nbytes
        rec.accesses += 1
        rec.bytes += nbytes
        rec.data_cycles += data
        rec.overhead_cycles += overhead
        if self._obs_counters is not None:
            self._emit_obs(1, nbytes, data, overhead)
        if self.trace is not None:
            self.trace.append(TraceEntry(stream, addr, nbytes, write, data + overhead))
        return data + overhead

    def access_scattered(
        self,
        stream: str,
        count: int,
        nbytes_each: int,
        *,
        write: bool,
        hit_fraction: float = 0.0,
        turnaround_each: bool = False,
    ) -> int:
        """Bulk-charge ``count`` independent scattered accesses.

        Statistical shortcut for access patterns with no locality (the
        un-optimized architectures issue millions of such transactions
        per frame): each access pays the transfer plus a row miss,
        except a ``hit_fraction`` that finds its row open.  With
        ``turnaround_each`` the bus also reverses around every access
        (read-modify-write interleavings).  Aggregate statistics are
        identical to issuing the accesses one by one at random
        addresses; only the per-bank state bookkeeping is skipped.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0
        if nbytes_each <= 0:
            raise ValueError("accesses must move at least one byte")
        if not (0.0 <= hit_fraction <= 1.0):
            raise ValueError("hit_fraction must be in [0, 1]")
        params = self.params
        rec = self.stats.stream(stream)
        data = count * params.transfer_cycles(nbytes_each)
        hits = int(round(count * hit_fraction))
        misses = count - hits
        overhead = misses * params.row_miss_cycles + hits * params.row_hit_cycles
        if turnaround_each:
            overhead += count * params.turnaround_cycles
        elif self._last_was_write is not None and self._last_was_write != write:
            overhead += params.turnaround_cycles
        rec.accesses += count
        rec.bytes += count * nbytes_each
        rec.data_cycles += data
        rec.overhead_cycles += overhead
        if self._obs_counters is not None:
            self._emit_obs(count, count * nbytes_each, data, overhead)
        # Scattered traffic leaves the banks in an unknown state.
        self._open_rows.clear()
        self._last_was_write = write
        self._next_addr = None
        if self.trace is not None:
            self.trace.append(
                TraceEntry(stream, -1, count * nbytes_each, write, data + overhead)
            )
        return data + overhead

    # ------------------------------------------------------------------
    def _emit_obs(self, accesses: int, nbytes: int, data: int, overhead: int) -> None:
        c_accesses, c_bytes, c_data, c_overhead = self._obs_counters
        c_accesses.inc(accesses)
        c_bytes.inc(nbytes)
        c_data.inc(data)
        c_overhead.inc(overhead)

    def reset_stats(self) -> None:
        """Clear traffic counters but keep bank state."""
        self.stats = DramStats()

    @property
    def busy_cycles(self) -> int:
        """Deprecated: read ``model.stats.busy_cycles`` instead."""
        warnings.warn(
            "DramModel.busy_cycles is deprecated; use "
            "DramModel.stats.busy_cycles (or stats.as_dict())",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats.busy_cycles
