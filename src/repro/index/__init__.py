"""Unified nearest-neighbor index API.

One protocol (:class:`NeighborIndex`), one factory
(:func:`make_index`), every backend in the repo behind it::

    from repro.index import make_index

    index = make_index("kd-approx", reference_cloud)
    result = index.query(query_cloud, k=8)

See :mod:`repro.index.protocol` for the interface contract and
:mod:`repro.index.adapters` for the registered backends.
"""

from repro.index.adapters import (
    BruteForceIndex,
    KdApproxIndex,
    KdBbfIndex,
    KdExactIndex,
)
from repro.index.protocol import (
    NeighborIndex,
    UnsupportedQuery,
    UnsupportedQueryMixin,
    available_indexes,
    declare_support,
    make_index,
    register_index,
    supporting_backends,
)

__all__ = [
    "BruteForceIndex",
    "KdApproxIndex",
    "KdBbfIndex",
    "KdExactIndex",
    "NeighborIndex",
    "UnsupportedQuery",
    "UnsupportedQueryMixin",
    "available_indexes",
    "declare_support",
    "make_index",
    "register_index",
    "supporting_backends",
]
