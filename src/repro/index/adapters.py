"""Backend adapters: every kNN method in the repo as a NeighborIndex.

Thin objects — each one owns its built structure and delegates
``query`` to the existing search code, so the free functions and these
adapters can never drift apart.  Importing this module populates the
registry (done automatically by ``repro.index``).

Registered names (aliases in parentheses):

========================  ===================================================
``kd-approx`` (approx)    single-bucket k-d tree search on the batched engine
``kd-exact`` (exact)      backtracking exact search, batched engine
``kd-bbf`` (bbf)          best-bin-first with a leaf budget (FLANN checks)
``kd-blocked``            spatially blocked per-block trees, exact AABB-
(kd_blocked)              pruned routing (``repro.kdtree.blocked``)
``bruteforce`` (linear)   chunked exhaustive search (ground truth)
``forest``                randomized k-d tree forest, joint BBF
``grid``                  voxel hash with expanding-ring exact search
``lsh``                   random-projection LSH
``kmeans``                hierarchical k-means tree
========================  ===================================================
"""

from __future__ import annotations

import numpy as np

from repro.baselines.grid import GridIndex
from repro.baselines.kmeans_tree import KMeansTree
from repro.baselines.linear import knn_bruteforce
from repro.baselines.lsh import LshIndex
from repro.geometry import PointCloud
from repro.index.protocol import (
    NeighborIndex,
    declare_support,
    register_index,
)
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.forest import KdForest
from repro.kdtree.search import BbfConfig, QueryResult, knn_approx, knn_bbf, knn_exact
from repro.kdtree.build import build_tree


def _as_reference(reference: PointCloud | np.ndarray) -> np.ndarray:
    xyz = (
        reference.xyz
        if isinstance(reference, PointCloud)
        else np.asarray(reference, dtype=np.float64)
    )
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("reference must have shape (N, 3)")
    return xyz


class _KdTreeIndex:
    """Shared plumbing of the three k-d tree backends."""

    name = "kd-tree"
    supports_radius = True
    supports_sample = True

    def __init__(self, reference, tree: KdTreeConfig | None = None):
        self.tree_config = tree or KdTreeConfig()
        self.build(reference)

    def query_radius(self, queries, radius: float, *,
                     max_neighbors: int | None = None):
        """Batched exact radius search over the built tree (CSR result)."""
        from repro.query.radius import radius_batched

        return radius_batched(
            self._tree, queries, radius, max_neighbors=max_neighbors
        )

    def sample(self, m: int, *, start: int = 0) -> np.ndarray:
        """Farthest point sampling fused onto the already-built tree."""
        from repro.query.fps import sample_fps

        flat = self._tree.flat()
        return sample_fps(flat.points, m, start=start, flat=flat)

    def build(self, reference) -> "NeighborIndex":
        xyz = _as_reference(reference)
        self._tree, self._trace = build_tree(xyz, self.tree_config)
        return self

    def save_snapshot(self, path) -> None:
        """Write the flat layout to ``path`` (``Snapshot`` format).

        The snapshot round-trips the engine's structure-of-arrays
        bit-identically, so :meth:`from_snapshot` warm-starts an index
        whose batched queries answer exactly as this one's.
        """
        from repro.kdtree.snapshot import Snapshot

        Snapshot.from_flat(self._tree.flat()).save(path)

    @classmethod
    def from_snapshot(cls, path, *, tree: KdTreeConfig | None = None):
        """Warm-start from a :meth:`save_snapshot` file — no rebuild.

        The loaded index serves queries through the batched engine over
        the snapshot's :class:`~repro.kdtree.engine.FlatKdTree`;
        ``build(new_reference)`` still works and replaces the snapshot
        with a freshly built tree.  Available on the engine-backed
        backends (``kd-approx`` / ``kd-exact``); the BBF backend walks
        the node objects a snapshot does not store.
        """
        from repro.kdtree.snapshot import Snapshot

        if cls is KdBbfIndex:
            raise NotImplementedError(
                "kd-bbf walks KdNode objects; snapshots store only the flat "
                "layout — rebuild with KdBbfIndex(reference) instead"
            )
        self = cls.__new__(cls)
        self.tree_config = tree or KdTreeConfig()
        self._tree = Snapshot.load(path).to_flat()
        self._trace = None
        return self

    def stats(self) -> dict:
        flat = self._tree.flat()
        out = flat.stats()
        out["n_reference"] = out["n_points"]
        out["bucket_capacity"] = self.tree_config.bucket_capacity
        out["builder"] = self.tree_config.builder
        return out


class KdApproxIndex(_KdTreeIndex):
    """Single-bucket approximate search (the mode QuickNN accelerates)."""

    name = "kd-approx"

    def query(self, queries, k: int) -> QueryResult:
        return knn_approx(self._tree, queries, k)


class KdExactIndex(_KdTreeIndex):
    """Backtracking exact search over the same tree."""

    name = "kd-exact"

    def query(self, queries, k: int) -> QueryResult:
        return knn_exact(self._tree, queries, k)


class KdBbfIndex(_KdTreeIndex):
    """Best-bin-first search with a bounded leaf budget."""

    name = "kd-bbf"

    def __init__(self, reference, tree: KdTreeConfig | None = None,
                 config: BbfConfig | None = None):
        self.bbf_config = config or BbfConfig()
        super().__init__(reference, tree=tree)

    def query(self, queries, k: int) -> QueryResult:
        return knn_bbf(self._tree, queries, k, self.bbf_config)

    def stats(self) -> dict:
        out = super().stats()
        out["max_leaves"] = self.bbf_config.max_leaves
        return out


class BruteForceIndex:
    """Exhaustive search — exact by construction, the accuracy oracle."""

    name = "bruteforce"
    supports_radius = True
    supports_sample = True

    def __init__(self, reference, chunk_size: int = 1024):
        self.chunk_size = chunk_size
        self.build(reference)

    def build(self, reference) -> "NeighborIndex":
        self._reference = _as_reference(reference)
        return self

    def query(self, queries, k: int) -> QueryResult:
        return knn_bruteforce(self._reference, queries, k, chunk_size=self.chunk_size)

    def query_radius(self, queries, radius: float, *,
                     max_neighbors: int | None = None):
        """Exhaustive radius search — the modality's accuracy oracle."""
        from repro.query.radius import radius_bruteforce

        return radius_bruteforce(
            self._reference, queries, radius,
            max_neighbors=max_neighbors, chunk_size=self.chunk_size,
        )

    def sample(self, m: int, *, start: int = 0) -> np.ndarray:
        """Naive O(n·m) FPS — defines the selection sequence."""
        from repro.query.fps import sample_fps_reference

        return sample_fps_reference(self._reference, m, start=start)

    def stats(self) -> dict:
        return {
            "n_reference": int(self._reference.shape[0]),
            "chunk_size": self.chunk_size,
        }


# ----------------------------------------------------------------------
# Registry population
# ----------------------------------------------------------------------
@register_index("kd-approx", "approx")
def _kd_approx(reference, **cfg) -> NeighborIndex:
    return KdApproxIndex(reference, **cfg)


@register_index("kd-exact", "exact")
def _kd_exact(reference, **cfg) -> NeighborIndex:
    return KdExactIndex(reference, **cfg)


@register_index("kd-bbf", "bbf")
def _kd_bbf(reference, **cfg) -> NeighborIndex:
    return KdBbfIndex(reference, **cfg)


@register_index("bruteforce", "linear")
def _bruteforce(reference, **cfg) -> NeighborIndex:
    return BruteForceIndex(reference, **cfg)


@register_index("kd-blocked", "kd_blocked")
def _kd_blocked(reference, **cfg) -> NeighborIndex:
    """Blocked out-of-core index (exact; see ``repro.kdtree.blocked``).

    ``config=`` takes a :class:`~repro.kdtree.blocked.BlockedBuildConfig`;
    the default splits the reference into four blocks so even
    frame-scale clouds exercise the router.  Remaining ``cfg`` keys
    (``max_resident_blocks``, ``eviction``, ...) pass through to
    :class:`~repro.kdtree.blocked.BlockedIndex`.
    """
    from repro.kdtree.blocked import BlockedBuildConfig, build_blocked

    config = cfg.pop("config", None) or BlockedBuildConfig(n_blocks=4)
    return build_blocked(reference, config, **cfg)


@register_index("forest")
def _forest(reference, **cfg) -> NeighborIndex:
    return KdForest(reference, **cfg)


@register_index("grid")
def _grid(reference, **cfg) -> NeighborIndex:
    return GridIndex(reference, **cfg)


@register_index("lsh")
def _lsh(reference, **cfg) -> NeighborIndex:
    return LshIndex(reference, **cfg)


@register_index("kmeans")
def _kmeans(reference, **cfg) -> NeighborIndex:
    return KMeansTree(reference, **cfg)


# Capability declarations feed ``supporting_backends`` and the
# ``UnsupportedQuery`` message the remaining backends raise.
declare_support(
    "radius", "kd-approx", "kd-exact", "kd-bbf", "kd-blocked", "bruteforce"
)
declare_support(
    "sample", "kd-approx", "kd-exact", "kd-bbf", "kd-blocked", "bruteforce"
)
