"""The :class:`NeighborIndex` protocol and the backend registry.

Every nearest-neighbor method in the reproduction — k-d tree searches,
the randomized forest, the grid / LSH / k-means baselines, brute force —
answers the same question: *given a reference cloud, return the k
nearest reference points for a batch of queries*.  This module gives
that question one shape:

* :class:`NeighborIndex` — the structural protocol all backends
  satisfy: ``build(reference)``, ``query(queries, k) -> QueryResult``,
  a ``name`` and a ``stats()`` dict.
* :func:`register_index` / :func:`make_index` — a string-keyed factory
  registry, so harnesses, ICP and tests can select a backend by name
  (``make_index("grid", reference, config=GridConfig(1.0))``) instead
  of hard-coding imports.

The free search functions (:func:`repro.kdtree.knn_approx` and
friends) remain available; the adapters in
:mod:`repro.index.adapters` are thin objects over them.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.search import QueryResult
from repro.registry import Registry


@runtime_checkable
class NeighborIndex(Protocol):
    """Structural interface of every kNN backend.

    ``build`` (re)binds the index to a reference cloud and returns the
    bound index — so both ``make_index(name, ref)`` and
    ``prebuilt.build(new_ref)`` hand back something ready to ``query``.
    ``stats`` reports backend-specific structure diagnostics; every
    backend includes at least ``n_reference``.
    """

    @property
    def name(self) -> str: ...

    def build(self, reference: PointCloud | np.ndarray) -> "NeighborIndex": ...

    def query(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult: ...

    def stats(self) -> dict: ...


IndexFactory = Callable[..., NeighborIndex]

INDEXES: Registry[IndexFactory] = Registry("knn index")


def register_index(name: str, *aliases: str) -> Callable[[IndexFactory], IndexFactory]:
    """Register a backend factory under ``name`` (plus aliases).

    The factory is called as ``factory(reference, **cfg)`` and must
    return a built :class:`NeighborIndex`.  Use as a decorator::

        @register_index("grid")
        def _grid(reference, **cfg):
            return GridIndex(reference, **cfg)
    """
    return INDEXES.register(name, *aliases)


def available_indexes() -> list[str]:
    """Sorted canonical backend names (aliases excluded)."""
    return list(INDEXES.available())


def make_index(
    name: str, reference: PointCloud | np.ndarray, **cfg
) -> NeighborIndex:
    """Build a registered backend by name.

    ``cfg`` is passed through to the backend factory (e.g.
    ``make_index("kd-approx", ref, tree=KdTreeConfig(bucket_capacity=64))``).
    """
    factory = INDEXES.resolve(name)
    return factory(reference, **cfg)
