"""The :class:`NeighborIndex` protocol and the backend registry.

Every nearest-neighbor method in the reproduction — k-d tree searches,
the randomized forest, the grid / LSH / k-means baselines, brute force —
answers the same question: *given a reference cloud, return the k
nearest reference points for a batch of queries*.  This module gives
that question one shape:

* :class:`NeighborIndex` — the structural protocol all backends
  satisfy: ``build(reference)``, ``query(queries, k) -> QueryResult``,
  a ``name`` and a ``stats()`` dict.
* :func:`register_index` / :func:`make_index` — a string-keyed factory
  registry, so harnesses, ICP and tests can select a backend by name
  (``make_index("grid", reference, config=GridConfig(1.0))``) instead
  of hard-coding imports.

Beyond k-NN, the protocol carries two further query modalities with
per-backend **capability flags**:

* ``supports_radius`` / ``query_radius(queries, radius)`` — batched
  radius (range) search returning a CSR
  :class:`~repro.query.result.RaggedResult`;
* ``supports_sample`` / ``sample(m)`` — farthest point sampling over
  the reference cloud.

A backend that lacks a modality keeps the method but raises the typed
:class:`UnsupportedQuery` (listing the backends that *do* support it,
registry-style) instead of failing with ``AttributeError`` or —
worse — silently answering wrong.  :class:`UnsupportedQueryMixin`
supplies that default behavior.

The free search functions (:func:`repro.kdtree.knn_approx` and
friends) remain available; the adapters in
:mod:`repro.index.adapters` are thin objects over them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

import numpy as np

from repro.geometry import PointCloud
from repro.modality import (
    UnsupportedQuery,
    UnsupportedQueryMixin,
    declare_support,
    supporting_backends,
)
from repro.registry import Registry

if TYPE_CHECKING:
    # Type-only: keeps this module import-cycle-free so backends living
    # under repro.kdtree / repro.baselines can import the mixin.
    from repro.kdtree.search import QueryResult
    from repro.query.result import RaggedResult


@runtime_checkable
class NeighborIndex(Protocol):
    """Structural interface of every kNN backend.

    ``build`` (re)binds the index to a reference cloud and returns the
    bound index — so both ``make_index(name, ref)`` and
    ``prebuilt.build(new_ref)`` hand back something ready to ``query``.
    ``stats`` reports backend-specific structure diagnostics; every
    backend includes at least ``n_reference``.

    ``query_radius`` and ``sample`` are the non-kNN modalities; the
    paired ``supports_*`` flags say whether a backend answers them
    natively.  Callers either check the flag or catch
    :class:`UnsupportedQuery` — the methods always exist (that is what
    keeps ``isinstance(x, NeighborIndex)`` meaningful), they just
    refuse in a typed, uniform way where unsupported.
    """

    supports_radius: bool
    supports_sample: bool

    @property
    def name(self) -> str: ...

    def build(self, reference: PointCloud | np.ndarray) -> "NeighborIndex": ...

    def query(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult: ...

    def query_radius(
        self,
        queries: PointCloud | np.ndarray,
        radius: float,
        *,
        max_neighbors: int | None = None,
    ) -> "RaggedResult": ...

    def sample(self, m: int, *, start: int = 0) -> np.ndarray: ...

    def stats(self) -> dict: ...


# Re-exported as this module's public surface; defined in the
# dependency-free repro.modality so backends can import the mixin
# without a package cycle.
__all__ = [
    "IndexFactory",
    "NeighborIndex",
    "UnsupportedQuery",
    "UnsupportedQueryMixin",
    "available_indexes",
    "declare_support",
    "make_index",
    "register_index",
    "supporting_backends",
]


IndexFactory = Callable[..., NeighborIndex]

INDEXES: Registry[IndexFactory] = Registry("knn index")


def register_index(name: str, *aliases: str) -> Callable[[IndexFactory], IndexFactory]:
    """Register a backend factory under ``name`` (plus aliases).

    The factory is called as ``factory(reference, **cfg)`` and must
    return a built :class:`NeighborIndex`.  Use as a decorator::

        @register_index("grid")
        def _grid(reference, **cfg):
            return GridIndex(reference, **cfg)
    """
    return INDEXES.register(name, *aliases)


def available_indexes() -> list[str]:
    """Sorted canonical backend names (aliases excluded)."""
    return list(INDEXES.available())


def make_index(
    name: str, reference: PointCloud | np.ndarray, **cfg
) -> NeighborIndex:
    """Build a registered backend by name.

    ``cfg`` is passed through to the backend factory (e.g.
    ``make_index("kd-approx", ref, tree=KdTreeConfig(bucket_capacity=64))``).
    """
    factory = INDEXES.resolve(name)
    return factory(reference, **cfg)
