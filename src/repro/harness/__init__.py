"""Experiment harness: regenerate every table and figure of the paper.

Each experiment is a function returning an :class:`ExperimentResult`
(the measured rows, the paper's reference numbers where available, and
named *shape checks* asserting that the qualitative result — who wins,
by roughly what factor, where the crossover falls — reproduced).

Run them all from the command line::

    quicknn-experiments list
    quicknn-experiments run fig12
    quicknn-experiments all

or programmatically::

    from repro.harness import run_experiment
    result = run_experiment("table5")
    print(result.to_text())
"""

from repro.harness.markdown import report_document, result_to_markdown
from repro.harness.result import ExperimentResult
from repro.harness.registry import (
    EXPERIMENTS,
    experiment_ids,
    run_all,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "experiment_ids",
    "report_document",
    "result_to_markdown",
    "run_all",
    "run_experiment",
]
