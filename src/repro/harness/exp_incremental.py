"""Incremental tree update experiment: Figure 10."""

from __future__ import annotations

from repro.datasets import DriveConfig, generate_drive
from repro.harness.result import ExperimentResult
from repro.kdtree import KdTreeConfig, build_tree, reuse_tree, update_tree


def fig10_incremental(
    n_frames: int = 12,
    n_points: int = 15_000,
    bucket_capacity: int = 256,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 10: bucket-size bounds, static reuse vs incremental update.

    A tree is built on the first frame of a drive.  The *static*
    strategy keeps its thresholds and only re-buckets each new frame;
    the *incremental* strategy additionally merges delinquent leaves
    and splits oversized ones.  The divergence of max/min bucket size is
    the paper's evidence that a frozen tree decays within a few frames.
    """
    config = KdTreeConfig(bucket_capacity=bucket_capacity)
    frames = list(
        generate_drive(
            DriveConfig(n_frames=n_frames, target_points=n_points, scene_seed=seed),
            seed=seed,
        )
    )
    first = frames[0].cloud
    static_tree, _ = build_tree(first, config)
    incr_tree = static_tree

    rows = []
    for frame in frames[1:]:
        static_tree = reuse_tree(static_tree, frame.cloud)
        incr_tree, trace = update_tree(incr_tree, frame.cloud, config)
        s_sizes = static_tree.bucket_sizes()
        i_sizes = incr_tree.bucket_sizes()
        rows.append(
            [
                frame.index,
                int(s_sizes.min()),
                int(s_sizes.max()),
                int(i_sizes.min()),
                int(i_sizes.max()),
                trace.n_merges,
                trace.n_splits,
                trace.points_rebuilt,
            ]
        )

    last = rows[-1]
    static_spread = last[2] / max(last[1], 1)
    # The update's bounds are capacity-based: [B_N / 2, 2 B_N].
    incr_max_ratio = last[4] / bucket_capacity
    incr_min_ratio = last[3] / bucket_capacity
    rebuilt_fraction = sum(r[7] for r in rows) / (len(rows) * n_points)
    return ExperimentResult(
        exp_id="fig10",
        title="Max/min bucket size over a drive: static vs incremental",
        headers=[
            "frame", "static min", "static max", "incr min", "incr max",
            "merges", "splits", "points rebuilt",
        ],
        rows=rows,
        paper_says=(
            "a static tree's balance deteriorates after only a few frames; "
            "incremental update keeps max/min near 2x / 0.5x the average"
        ),
        shape_checks={
            "static tree diverges (max/min > 4 by the end)": static_spread > 4.0,
            "incremental max bounded by 2x capacity": incr_max_ratio <= 2.0,
            "incremental min stays a usable fraction of capacity": incr_min_ratio >= 0.2,
            "incremental rebuilds only a fraction of points": rebuilt_fraction < 0.5,
        },
    )
