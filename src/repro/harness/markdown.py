"""Markdown rendering of experiment results.

Turns :class:`~repro.harness.result.ExperimentResult` objects into the
GitHub-flavored markdown used by the repository's EXPERIMENTS-style
reports, and assembles a full results document from a set of runs —
the reproducibility artifact ``quicknn-experiments report`` writes.
"""

from __future__ import annotations

from repro.harness.result import ExperimentResult, _format_cell


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with table and check list.

    Renders from :meth:`ExperimentResult.to_dict` — the same view the
    CLI's ``--json`` output serializes — so the two can never drift.
    """
    data = result.to_dict()
    lines = [f"## {data['exp_id']} — {data['title']}", ""]
    if data["paper_says"]:
        lines.append(f"*Paper:* {data['paper_says']}")
        lines.append("")
    lines.append("| " + " | ".join(data["headers"]) + " |")
    lines.append("|" + "|".join("---" for _ in data["headers"]) + "|")
    for row in data["rows"]:
        lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    lines.append("")
    for name, ok in data["shape_checks"].items():
        mark = "x" if ok else " "
        lines.append(f"- [{mark}] {name}")
    if data["notes"]:
        lines.append("")
        lines.append(f"> {data['notes']}")
    lines.append("")
    return "\n".join(lines)


def report_document(results: list[ExperimentResult], *, title: str | None = None) -> str:
    """A complete markdown report over a set of experiment results."""
    n_checks = sum(len(r.shape_checks) for r in results)
    n_pass = sum(sum(r.shape_checks.values()) for r in results)
    timed = any(r.elapsed_s > 0 for r in results)
    header = [
        f"# {title or 'QuickNN reproduction — regenerated results'}",
        "",
        f"{len(results)} experiments, {n_pass}/{n_checks} shape checks passing.",
        "",
        "| experiment | title | checks |" + (" elapsed |" if timed else ""),
        "|---|---|---|" + ("---|" if timed else ""),
    ]
    for r in results:
        data = r.to_dict()
        ok = sum(data["shape_checks"].values())
        line = f"| {data['exp_id']} | {data['title']} | {ok}/{len(data['shape_checks'])} |"
        if timed:
            line += f" {data['elapsed_s']:.1f}s |"
        header.append(line)
    header.append("")
    sections = [result_to_markdown(r) for r in results]
    return "\n".join(header) + "\n" + "\n".join(sections)
