"""Markdown rendering of experiment results.

Turns :class:`~repro.harness.result.ExperimentResult` objects into the
GitHub-flavored markdown used by the repository's EXPERIMENTS-style
reports, and assembles a full results document from a set of runs —
the reproducibility artifact ``quicknn-experiments report`` writes.
"""

from __future__ import annotations

from repro.harness.result import ExperimentResult, _format_cell


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with table and check list."""
    lines = [f"## {result.exp_id} — {result.title}", ""]
    if result.paper_says:
        lines.append(f"*Paper:* {result.paper_says}")
        lines.append("")
    lines.append("| " + " | ".join(result.headers) + " |")
    lines.append("|" + "|".join("---" for _ in result.headers) + "|")
    for row in result.rows:
        lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
    lines.append("")
    for name, ok in result.shape_checks.items():
        mark = "x" if ok else " "
        lines.append(f"- [{mark}] {name}")
    if result.notes:
        lines.append("")
        lines.append(f"> {result.notes}")
    lines.append("")
    return "\n".join(lines)


def report_document(results: list[ExperimentResult], *, title: str | None = None) -> str:
    """A complete markdown report over a set of experiment results."""
    n_checks = sum(len(r.shape_checks) for r in results)
    n_pass = sum(sum(r.shape_checks.values()) for r in results)
    header = [
        f"# {title or 'QuickNN reproduction — regenerated results'}",
        "",
        f"{len(results)} experiments, {n_pass}/{n_checks} shape checks passing.",
        "",
        "| experiment | title | checks |",
        "|---|---|---|",
    ]
    for r in results:
        ok = sum(r.shape_checks.values())
        header.append(f"| {r.exp_id} | {r.title} | {ok}/{len(r.shape_checks)} |")
    header.append("")
    sections = [result_to_markdown(r) for r in results]
    return "\n".join(header) + "\n" + "\n".join(sections)
