"""``quicknn-experiments bench-diff``: the trajectory regression gate.

Compares two ``BENCH_*.json`` trajectory artifacts (the
``quicknn-bench-<area>/v1`` schema emitted by ``quicknn-serve bench
--bench-json`` and the engine/build micro-benchmark sessions) and
flags regressions *beyond the recorded noise*.

The tolerance logic: every benchmark entry carries its per-repeat
rates (``qps_runs``), so each file records how noisy its own
measurement was.  A benchmark regresses only when the new best rate
falls below the old best rate by more than::

    max(rel_spread(old runs), rel_spread(new runs), min_spread)

where ``rel_spread`` is ``(max - min) / max`` of the repeats and
``min_spread`` (default 10%) is the floor that keeps a pair of
suspiciously-quiet runs from gating on scheduler luck.  All rates are
higher-is-better, matching the artifacts.

Exit codes: 0 clean (or ``--warn-only``), 1 regression, 2 unusable
input.  Benchmarks present in only one file are reported but never
gate — a renamed or newly added benchmark is not a regression.
"""

from __future__ import annotations

import json
import sys

#: Default noise floor: differences under 10% never gate.  On the
#: 1-core CI runner the recorded spreads routinely exceed this, so the
#: effective tolerance is usually the artifact's own spread.
DEFAULT_MIN_SPREAD = 0.10


def load_trajectory(path: str) -> dict:
    """Load and minimally validate one trajectory artifact."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not schema.startswith("quicknn-bench-"):
        raise ValueError(
            f"{path}: schema {schema!r} is not a quicknn-bench-*/v1 trajectory"
        )
    if not isinstance(doc.get("benchmarks"), list):
        raise ValueError(f"{path}: missing 'benchmarks' list")
    return doc


def _rel_spread(runs: list[float]) -> float:
    runs = [r for r in runs if r > 0]
    if len(runs) < 2:
        return 0.0
    best = max(runs)
    return (best - min(runs)) / best if best > 0 else 0.0


def diff_trajectories(
    old: dict, new: dict, *, min_spread: float = DEFAULT_MIN_SPREAD
) -> list[dict]:
    """Per-benchmark comparison rows; see the module docstring for rules.

    Each row has ``name``, ``status`` (``ok`` / ``improved`` /
    ``regressed`` / ``added`` / ``removed``), the old/new rates, the
    ratio, and the tolerance that was applied.
    """
    old_by_name = {b["name"]: b for b in old["benchmarks"]}
    new_by_name = {b["name"]: b for b in new["benchmarks"]}
    rows: list[dict] = []
    for name in sorted(old_by_name | new_by_name):
        if name not in new_by_name:
            rows.append({"name": name, "status": "removed",
                         "old_qps": old_by_name[name].get("qps"),
                         "new_qps": None, "ratio": None, "tolerance": None})
            continue
        if name not in old_by_name:
            rows.append({"name": name, "status": "added", "old_qps": None,
                         "new_qps": new_by_name[name].get("qps"),
                         "ratio": None, "tolerance": None})
            continue
        o, n = old_by_name[name], new_by_name[name]
        old_qps = float(o.get("qps", 0.0))
        new_qps = float(n.get("qps", 0.0))
        tolerance = max(
            _rel_spread(o.get("qps_runs", [])),
            _rel_spread(n.get("qps_runs", [])),
            min_spread,
        )
        ratio = new_qps / old_qps if old_qps > 0 else float("inf")
        if old_qps > 0 and new_qps < old_qps * (1.0 - tolerance):
            status = "regressed"
        elif old_qps > 0 and new_qps > old_qps * (1.0 + tolerance):
            status = "improved"
        else:
            status = "ok"
        rows.append({
            "name": name, "status": status, "old_qps": old_qps,
            "new_qps": new_qps, "ratio": ratio, "tolerance": tolerance,
        })
    return rows


def format_report(rows: list[dict]) -> str:
    """Human-readable table of a :func:`diff_trajectories` result."""
    header = f"{'benchmark':40} {'old qps':>12} {'new qps':>12} " \
             f"{'ratio':>7} {'tol':>6}  status"
    lines = [header, "-" * len(header)]
    for row in rows:
        old_qps = "-" if row["old_qps"] is None else f"{row['old_qps']:,.1f}"
        new_qps = "-" if row["new_qps"] is None else f"{row['new_qps']:,.1f}"
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        tol = "-" if row["tolerance"] is None else f"{row['tolerance']:.0%}"
        lines.append(
            f"{row['name']:40} {old_qps:>12} {new_qps:>12} "
            f"{ratio:>7} {tol:>6}  {row['status']}"
        )
    return "\n".join(lines)


def run_diff(old_path: str, new_path: str, *,
             min_spread: float = DEFAULT_MIN_SPREAD,
             warn_only: bool = False, out=None) -> int:
    """The ``bench-diff`` subcommand body; returns the exit code."""
    out = out if out is not None else sys.stdout
    try:
        old = load_trajectory(old_path)
        new = load_trajectory(new_path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench-diff: {exc}", file=sys.stderr)
        return 2
    if old.get("schema") != new.get("schema"):
        print(
            f"bench-diff: comparing different areas "
            f"({old.get('schema')} vs {new.get('schema')})",
            file=sys.stderr,
        )
        return 2
    rows = diff_trajectories(old, new, min_spread=min_spread)
    print(format_report(rows), file=out)
    added = [r["name"] for r in rows if r["status"] == "added"]
    removed = [r["name"] for r in rows if r["status"] == "removed"]
    if added:
        print(f"note: {len(added)} new benchmark(s), informational only: "
              + ", ".join(added), file=out)
    if removed:
        print(f"note: {len(removed)} benchmark(s) only in the old file, "
              "informational only: " + ", ".join(removed), file=out)
    regressions = [r for r in rows if r["status"] == "regressed"]
    if regressions:
        names = ", ".join(r["name"] for r in regressions)
        verdict = "WARN" if warn_only else "FAIL"
        print(f"{verdict}: {len(regressions)} regression(s): {names}",
              file=sys.stderr)
        return 0 if warn_only else 1
    return 0
