"""Experiment result container and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """The regenerated data for one of the paper's tables or figures.

    ``rows`` are the measured series; ``shape_checks`` are named boolean
    assertions that the paper's qualitative finding reproduced (these
    are what the benchmark suite asserts on); ``paper_says`` records the
    corresponding claim from the paper for side-by-side reading.
    """

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    shape_checks: dict[str, bool] = field(default_factory=dict)
    paper_says: str = ""
    notes: str = ""
    #: Wall-clock seconds the regeneration took (filled by the runner).
    elapsed_s: float = 0.0

    @property
    def all_checks_pass(self) -> bool:
        return all(self.shape_checks.values())

    def failed_checks(self) -> list[str]:
        return [name for name, ok in self.shape_checks.items() if not ok]

    def to_dict(self) -> dict:
        """JSON-ready view — the single serialization the CLI and the
        markdown report both build on."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "shape_checks": self.shape_checks,
            "all_checks_pass": self.all_checks_pass,
            "paper_says": self.paper_says,
            "notes": self.notes,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict` (derived fields are recomputed).

        Used to gather results back from ``--workers`` subprocesses,
        which ship the JSON-ready view across the process boundary.
        """
        return cls(
            exp_id=payload["exp_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            shape_checks=dict(payload["shape_checks"]),
            paper_says=payload.get("paper_says", ""),
            notes=payload.get("notes", ""),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )

    def to_text(self) -> str:
        """Render as an aligned plain-text report."""
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.paper_says:
            lines.append(f"paper: {self.paper_says}")
        lines.append(render_table(self.headers, self.rows))
        for name, ok in self.shape_checks.items():
            lines.append(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: list[str], rows: list[list]) -> str:
    """Simple aligned ASCII table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(str(v).rjust(w) for v, w in zip(row, widths))
    out = [fmt(headers), fmt(["-" * w for w in widths])]
    out.extend(fmt(r) for r in cells)
    return "\n".join(out)
