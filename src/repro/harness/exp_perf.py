"""Accelerator performance experiments: Tables 4-5, Figures 14-16."""

from __future__ import annotations

from repro.analysis.resources import QUICKNN_RESOURCE_MODEL, quicknn_cache_bytes
from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.result import ExperimentResult

#: The paper's Table 5 (QuickNN FPS on FPGA), for side-by-side reporting.
PAPER_TABLE5_FPS = {
    (16, 10_000): 138.6, (16, 20_000): 74.8, (16, 30_000): 44.2,
    (32, 10_000): 221.5, (32, 20_000): 120.4, (32, 30_000): 73.1,
    (64, 10_000): 325.2, (64, 20_000): 176.3, (64, 30_000): 110.1,
    (128, 10_000): 422.7, (128, 20_000): 224.8, (128, 30_000): 145.6,
}


def _quicknn_report(n_points: int, n_fus: int, k: int, seed: int):
    ref, qry = lidar_frame_pair(n_points, seed=seed)
    _, report = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
    return report


def table4_linear_fps(
    frame_sizes: tuple[int, ...] = (10_000, 20_000, 30_000),
    fu_counts: tuple[int, ...] = (32, 64, 128),
    k: int = 8,
) -> ExperimentResult:
    """Table 4: measured FPS of the linear architecture."""
    fps: dict[tuple[int, int], float] = {}
    rows = []
    for fus in fu_counts:
        arch = LinearArch(LinearArchConfig(n_fus=fus))
        row: list = [fus]
        for n in frame_sizes:
            report = arch.simulate(n, n, k)
            fps[(fus, n)] = report.fps
            row.append(report.fps)
        rows.append(row)

    big, small = max(frame_sizes), min(frame_sizes)
    fu_lo, fu_hi = min(fu_counts), max(fu_counts)
    fu_mid = fu_counts[len(fu_counts) // 2]
    doubling = fps[(fu_mid, big)] / fps[(fu_lo, big)] / (fu_mid / fu_lo) * 2
    quadrupling = fps[(fu_hi, big)] / fps[(fu_lo, big)] / (fu_hi / fu_lo) * 4
    quadratic = (fps[(fu_mid, small)] / fps[(fu_mid, big)]) / (big / small) ** 2
    return ExperimentResult(
        exp_id="table4",
        title="Linear architecture FPS on the simulated FPGA",
        headers=["FUs"] + [f"{n//1000}k pts" for n in frame_sizes],
        rows=rows,
        paper_says=(
            "FPS scales ~proportionally with FUs (1.99x for 32->64, 3.93x for "
            "32->128) and latency grows quadratically with frame size; only "
            "small-frame configs reach 10 FPS"
        ),
        shape_checks={
            "doubling FUs gives ~2x": 1.8 <= doubling <= 2.1,
            "quadrupling FUs gives ~4x": 3.5 <= quadrupling <= 4.2,
            "latency quadratic in frame size": 0.7 <= quadratic <= 1.3,
            "largest frames below 10 FPS even at max FUs": fps[(fu_hi, big)] < 10.0,
        },
    )


def table5_quicknn_fps(
    frame_sizes: tuple[int, ...] = (10_000, 20_000, 30_000),
    fu_counts: tuple[int, ...] = (16, 32, 64, 128),
    k: int = 8,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Table 5: measured FPS of QuickNN, with the paper's numbers inline."""
    fps: dict[tuple[int, int], float] = {}
    rows = []
    for fus in fu_counts:
        row: list = [fus]
        for n in frame_sizes:
            report = _quicknn_report(n, fus, k, seed)
            fps[(fus, n)] = report.fps
            paper = PAPER_TABLE5_FPS.get((fus, n))
            row.append(report.fps)
            row.append(paper if paper is not None else "-")
        rows.append(row)

    headers = ["FUs"]
    for n in frame_sizes:
        headers += [f"{n//1000}k meas", f"{n//1000}k paper"]

    big = max(frame_sizes)
    monotone_fus = all(
        fps[(fu_counts[i], big)] < fps[(fu_counts[i + 1], big)]
        for i in range(len(fu_counts) - 1)
    )
    spread = fps[(max(fu_counts), big)] / fps[(min(fu_counts), big)]
    within_2x = all(
        0.5 <= fps[key] / paper <= 2.0
        for key, paper in PAPER_TABLE5_FPS.items()
        if key in fps
    )
    return ExperimentResult(
        exp_id="table5",
        title="QuickNN FPS on the simulated FPGA vs the paper",
        headers=headers,
        rows=rows,
        paper_says="44.2 / 73.1 / 110.1 / 145.6 FPS at 30k for 16/32/64/128 FUs",
        shape_checks={
            "FPS grows with FUs": monotone_fus,
            "16->128 FU spread is ~3x (diminishing returns)": 2.0 <= spread <= 4.5,
            "all cells within 2x of the paper": within_2x,
            "real-time (>=10 FPS) at every config": min(fps.values()) >= 10.0,
        },
    )


def fig14_k_sweep(
    k_values: tuple[int, ...] = (1, 2, 4, 8, 16),
    fu_counts: tuple[int, ...] = (16, 64, 128),
    n_points: int = 30_000,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 14: latency increase with the number of nearest neighbors."""
    rel: dict[tuple[int, int], float] = {}
    rows = []
    for fus in fu_counts:
        base = None
        row: list = [fus]
        for k in k_values:
            report = _quicknn_report(n_points, fus, k, seed)
            if base is None:
                base = report.total_cycles
            rel[(fus, k)] = report.total_cycles / base
            row.append(rel[(fus, k)])
        rows.append(row)

    kmax = max(k_values)
    return ExperimentResult(
        exp_id="fig14",
        title="Latency vs number of nearest neighbors (relative to k=1)",
        headers=["FUs"] + [f"k={k}" for k in k_values],
        rows=rows,
        paper_says=(
            "buffering and write-back overhead of larger k is minor, and only "
            "noticeable when the number of FUs is large"
        ),
        shape_checks={
            "latency rises with k": all(
                rel[(f, kmax)] >= rel[(f, min(k_values))] for f in fu_counts
            ),
            "overhead larger at high FU counts": rel[(max(fu_counts), kmax)]
            > rel[(min(fu_counts), kmax)],
            "overhead moderate at low FU count": rel[(min(fu_counts), kmax)] < 2.0,
        },
    )


def fig15_latency(
    frame_sizes: tuple[int, ...] = (5_000, 10_000, 15_000, 20_000, 30_000),
    fu_counts: tuple[int, ...] = (16, 64, 128),
    k: int = 8,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 15: total latency per frame vs frame size."""
    lat: dict[tuple[int, int], float] = {}
    rows = []
    for fus in fu_counts:
        row: list = [fus]
        for n in frame_sizes:
            report = _quicknn_report(n, fus, k, seed)
            lat[(fus, n)] = report.latency_ms
            row.append(report.latency_ms)
        rows.append(row)

    big, small = max(frame_sizes), min(frame_sizes)
    fu_mid = fu_counts[len(fu_counts) // 2]
    fu_sorted = sorted(fu_counts)
    ratio = lat[(fu_mid, big)] / lat[(fu_mid, small)]
    ideal = big / small
    return ExperimentResult(
        exp_id="fig15",
        title="QuickNN latency per frame (ms) vs frame size",
        headers=["FUs"] + [f"{n//1000}k" for n in frame_sizes],
        rows=rows,
        paper_says=(
            "latency scales nearly linearly with frame size: the cached tree "
            "makes external point accesses, O(N), dominate"
        ),
        shape_checks={
            "near-linear scaling in frame size": 0.6 * ideal <= ratio <= 1.4 * ideal,
            "more FUs means lower latency at the largest frame": all(
                lat[(fu_sorted[i + 1], big)] < lat[(fu_sorted[i], big)]
                for i in range(len(fu_sorted) - 1)
            ),
        },
    )


def fig16_perf_scaling(
    fu_counts: tuple[int, ...] = (16, 32, 64, 128),
    n_points: int = 30_000,
    k: int = 8,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 16: performance per area and per watt vs number of FUs."""
    rows = []
    per_area: dict[int, float] = {}
    per_watt: dict[int, float] = {}
    for fus in fu_counts:
        report = _quicknn_report(n_points, fus, k, seed)
        estimate = QUICKNN_RESOURCE_MODEL.estimate(
            fus, cache_bytes=quicknn_cache_bytes(fus)
        )
        per_area[fus] = report.fps / (estimate.area / 1e5)
        per_watt[fus] = report.fps / estimate.power_watts
        rows.append(
            [fus, report.fps, estimate.area, estimate.power_watts,
             per_area[fus], per_watt[fus]]
        )

    watt_monotone = all(
        per_watt[fu_counts[i]] <= per_watt[fu_counts[i + 1]] * 1.02
        for i in range(len(fu_counts) - 1)
    )
    peak = max(per_area, key=per_area.get)
    return ExperimentResult(
        exp_id="fig16",
        title="QuickNN performance per area (FPS / 100k LUT+FF) and per watt",
        headers=["FUs", "FPS", "area (LUT+FF)", "watts", "perf/area", "perf/watt"],
        rows=rows,
        paper_says=(
            "perf/watt keeps increasing with FUs; perf/area peaks and then "
            "decreases after 32 FUs as the read-gather cache grows"
        ),
        shape_checks={
            "perf/watt increases with FUs": watt_monotone,
            "perf/area peaks at an intermediate FU count": peak in (32, 64),
            "perf/area declines at 128 FUs": per_area[128] < per_area[peak],
        },
    )
