"""Accuracy experiments: Table 1 and Figure 3."""

from __future__ import annotations

import time

from repro.analysis.accuracy import knn_recall, top1_containment
from repro.baselines import GridIndex, KMeansTree, LshIndex, knn_bruteforce
from repro.datasets import lidar_frame_pair
from repro.harness.result import ExperimentResult
from repro.kdtree import BbfConfig, KdTreeConfig, build_tree, knn_approx, knn_bbf
from repro.kdtree.search import QueryResult


def table1_methods(n_points: int = 30_000, k: int = 8, *, seed: int = 0) -> ExperimentResult:
    """Table 1: accuracy / complexity / memory reads of the kNN methods.

    Accuracy is the paper's metric at x = 0 (fraction of returned
    neighbors among the true top-k) on a successive LiDAR frame pair —
    "accuracy for 30k points, 8 nearest neighbors".  The k-d tree row
    is FLANN-style best-bin-first (the software baseline the paper
    measured); the single-bucket hardware search is shown alongside.
    Execution times are for these Python implementations, so only their
    ordering — not their ratios — is meaningful.
    """
    ref, qry = lidar_frame_pair(n_points, seed=seed)

    t0 = time.perf_counter()
    exact = knn_bruteforce(ref, qry, k)
    linear_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    kd1 = knn_approx(tree, qry, k)
    kd1_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    kd_bbf = knn_bbf(tree, qry, k, BbfConfig(max_leaves=2))
    bbf_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    km_index = KMeansTree(ref)
    km = km_index.query(qry, k)
    km_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    lsh_index = LshIndex(ref)
    lsh = lsh_index.query(qry, k)
    lsh_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    grid_index = GridIndex(ref)
    grid = grid_index.query(qry, k)
    grid_time = time.perf_counter() - t0

    def acc(result: QueryResult) -> float:
        return knn_recall(result, exact, k)

    kd1_acc, bbf_acc, km_acc, lsh_acc = acc(kd1), acc(kd_bbf), acc(km), acc(lsh)
    grid_acc = acc(grid)
    rows = [
        ["Linear", 1.0, "N^2", "N^2", linear_time],
        ["Approx. k-means", km_acc, "N log N", "N log N", km_time],
        ["Approx. k-d (FLANN bbf)", bbf_acc, "N log N", "N log N", bbf_time],
        ["Approx. k-d (1 bucket)", kd1_acc, "N log N", "N log N", kd1_time],
        ["Approx. LSH", lsh_acc, "N log N", "N", lsh_time],
        ["Uniform grid (exact, ext)", grid_acc, "N r^3", "N r^3", grid_time],
    ]
    return ExperimentResult(
        exp_id="table1",
        title="Comparison of popular kNN methods",
        headers=["method", "accuracy", "search complexity", "mem reads", "exec seconds"],
        rows=rows,
        paper_says=(
            "linear 100%, k-means 99%, k-d 91%, LSH 18.4%; k-means is the "
            "most accurate approximate method but over twice as slow as k-d"
        ),
        shape_checks={
            "linear is exact": True,
            "FLANN-style k-d lands near the paper's 91%": 0.85 <= bbf_acc <= 0.97,
            "k-means beats single-bucket k-d": km_acc >= kd1_acc,
            "LSH collapses in 3D (under half of k-d)": lsh_acc <= 0.5 * bbf_acc,
            "k-means slower than single-bucket k-d": km_time > kd1_time,
            "linear slowest": linear_time > max(km_time, bbf_time, lsh_time),
            "uniform grid is exact (extension row)": grid_acc >= 0.999,
        },
        notes=(
            "The paper's FLANN baseline does limited backtracking; the "
            "single-bucket row is what the QuickNN hardware executes."
        ),
    )


def fig3_accuracy(
    n_points: int = 30_000,
    k: int = 5,
    max_extra: int = 5,
    bucket_sizes: tuple[int, ...] = (256, 512, 1024, 2048, 4096),
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 3: k-d search accuracy vs bucket size, k=5, x=0..5.

    Each row is one bucket size B_N; columns give the fraction of the
    single-bucket search's top-5 answers that fall within the exact
    top-(5+x), plus the top-1 containment rate.
    """
    ref, qry = lidar_frame_pair(n_points, seed=seed)
    exact = knn_bruteforce(ref, qry, k + max_extra)

    rows = []
    recalls_at_x0: list[float] = []
    for bucket in bucket_sizes:
        tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=bucket))
        approx = knn_approx(tree, qry, k)
        row: list = [bucket]
        for x in range(max_extra + 1):
            row.append(knn_recall(approx, exact, k, x))
        row.append(top1_containment(approx, exact))
        recalls_at_x0.append(row[1])
        rows.append(row)

    monotone_in_bucket = all(
        recalls_at_x0[i] <= recalls_at_x0[i + 1] + 0.03
        for i in range(len(recalls_at_x0) - 1)
    )
    monotone_in_x = all(row[1] <= row[1 + max_extra] + 1e-9 for row in rows)
    return ExperimentResult(
        exp_id="fig3",
        title="Accuracy of k-d tree search vs bucket size (KITTI-like)",
        headers=["B_N"] + [f"x={x}" for x in range(max_extra + 1)] + ["top-1"],
        rows=rows,
        paper_says=(
            "larger buckets give better accuracy; at 75% top-10 accuracy the "
            "minimum bucket size is 256"
        ),
        shape_checks={
            "accuracy rises with bucket size": monotone_in_bucket,
            "accuracy rises with x": monotone_in_x,
            "B_N=256 reaches ~75% at x=5": rows[0][1 + max_extra] >= 0.70,
            "largest bucket >= 90% at x=0": recalls_at_x0[-1] >= 0.90,
        },
    )
