"""Registry mapping experiment ids to their regenerator functions."""

from __future__ import annotations

from typing import Callable

from repro.harness.exp_accuracy import fig3_accuracy, table1_methods
from repro.harness.exp_incremental import fig10_incremental
from repro.harness.exp_memory import (
    fig8_write_gather,
    fig12_memory_accesses,
    fig13_bandwidth_utilization,
)
from repro.harness.exp_parallel import fig9_traversal
from repro.harness.exp_perf import (
    fig14_k_sweep,
    fig15_latency,
    fig16_perf_scaling,
    table4_linear_fps,
    table5_quicknn_fps,
)
from repro.harness.exp_extensions import (
    ext_ablation,
    ext_banks,
    ext_crosscheck,
    ext_exact_search,
    ext_hbm,
    ext_icp_registration,
    ext_incremental_scaling,
    ext_pareto,
    ext_sensitivity,
)
from repro.harness.exp_platforms import (
    fig17_platforms,
    sec71_prior_accelerators,
    table6_speedup,
    tables23_resources,
)
from repro.harness.exp_blocked import blocked_build
from repro.harness.exp_query import fps_build, radius_query
from repro.harness.exp_serve import serve_fleet, serve_load
from repro.harness.result import ExperimentResult

#: Every table and figure of the paper's evaluation, in paper order.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1_methods,
    "fig3": fig3_accuracy,
    "fig8": fig8_write_gather,
    "fig9": fig9_traversal,
    "fig10": fig10_incremental,
    "tables23": tables23_resources,
    "table4": table4_linear_fps,
    "table5": table5_quicknn_fps,
    "fig12": fig12_memory_accesses,
    "fig13": fig13_bandwidth_utilization,
    "fig14": fig14_k_sweep,
    "fig15": fig15_latency,
    "fig16": fig16_perf_scaling,
    "fig17": fig17_platforms,
    "table6": table6_speedup,
    "sec71": sec71_prior_accelerators,
    # Extensions beyond the paper's evaluation (see exp_extensions).
    "ext-ablation": ext_ablation,
    "ext-incremental": ext_incremental_scaling,
    "ext-hbm": ext_hbm,
    "ext-crosscheck": ext_crosscheck,
    "ext-exact": ext_exact_search,
    "ext-sensitivity": ext_sensitivity,
    "ext-banks": ext_banks,
    "ext-pareto": ext_pareto,
    "ext-icp": ext_icp_registration,
    "serve-load": serve_load,
    "serve-fleet": serve_fleet,
    "blocked-build": blocked_build,
    "radius-query": radius_query,
    "fps-build": fps_build,
}


def experiment_ids() -> list[str]:
    """All known experiment ids, in paper order."""
    return list(EXPERIMENTS)


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id, passing overrides through."""
    if exp_id not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")
    return EXPERIMENTS[exp_id](**kwargs)


def run_all(**kwargs) -> dict[str, ExperimentResult]:
    """Run the whole evaluation; returns results keyed by id."""
    return {exp_id: run_experiment(exp_id, **kwargs) for exp_id in EXPERIMENTS}
