"""Command-line entry point: ``quicknn-experiments``.

Usage::

    quicknn-experiments list                  # show all experiment ids
    quicknn-experiments run fig12             # regenerate one table/figure
    quicknn-experiments all [--json out.json] # regenerate the whole evaluation
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.harness.registry import experiment_ids, run_experiment
from repro.harness.result import ExperimentResult


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quicknn-experiments",
        description="Regenerate the tables and figures of the QuickNN paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("exp_id", choices=experiment_ids())
    run.add_argument("--json", metavar="PATH", help="also write the result as JSON")
    everything = sub.add_parser("all", help="run every experiment in paper order")
    everything.add_argument("--json", metavar="PATH", help="also write results as JSON")
    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("out", metavar="PATH", help="markdown file to write")
    return parser


def _as_json(results: list[ExperimentResult]) -> str:
    payload = [
        {
            "exp_id": r.exp_id,
            "title": r.title,
            "headers": r.headers,
            "rows": r.rows,
            "shape_checks": r.shape_checks,
            "paper_says": r.paper_says,
            "notes": r.notes,
        }
        for r in results
    ]
    return json.dumps(payload, indent=2, default=str)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    ids = [args.exp_id] if args.command == "run" else experiment_ids()
    results: list[ExperimentResult] = []
    any_failed = False
    for exp_id in ids:
        start = time.perf_counter()
        result = run_experiment(exp_id)
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.to_text())
        print(f"({elapsed:.1f}s)\n")
        if not result.all_checks_pass:
            any_failed = True

    if getattr(args, "json", None):
        with open(args.json, "w") as handle:
            handle.write(_as_json(results))
        print(f"wrote {args.json}")
    if args.command == "report":
        from repro.harness.markdown import report_document

        with open(args.out, "w") as handle:
            handle.write(report_document(results))
        print(f"wrote {args.out}")
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
