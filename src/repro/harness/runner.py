"""Command-line entry point: ``quicknn-experiments``.

Usage::

    quicknn-experiments list                  # show all experiment ids
    quicknn-experiments run fig12 fig13       # regenerate one or more
    quicknn-experiments all [--json out.json] # regenerate the whole evaluation
    quicknn-experiments report out.md         # markdown reproducibility report

Every experiment-running subcommand also accepts the observability
flags (see ``docs/observability.md``)::

    --profile prof.json    # per-experiment wall-clock + subsystem metrics
    --trace out.trace.json # Chrome trace_event timeline (chrome://tracing)
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import repro.obs as obs
from repro.harness.registry import experiment_ids, run_experiment
from repro.harness.result import ExperimentResult, render_table


def _add_output_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--json", metavar="PATH", help="also write the results as JSON")
    sub.add_argument(
        "--profile",
        metavar="PATH",
        help="write a JSON profile: per-experiment wall-clock + subsystem metrics",
    )
    sub.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace_event timeline (load in chrome://tracing)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quicknn-experiments",
        description="Regenerate the tables and figures of the QuickNN paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "exp_ids",
        nargs="+",
        choices=experiment_ids(),
        metavar="exp_id",
        help="experiment id(s); see `quicknn-experiments list`",
    )
    _add_output_flags(run)
    everything = sub.add_parser("all", help="run every experiment in paper order")
    _add_output_flags(everything)
    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("out", metavar="PATH", help="markdown file to write")
    _add_output_flags(report)
    return parser


def _as_json(results: list[ExperimentResult]) -> str:
    return json.dumps([r.to_dict() for r in results], indent=2, default=str)


def _timing_table(results: list[ExperimentResult]) -> str:
    """Per-experiment elapsed/total summary (printed after multi-runs)."""
    total = sum(r.elapsed_s for r in results)
    rows = [
        [
            r.exp_id,
            f"{r.elapsed_s:.1f}",
            f"{(r.elapsed_s / total if total else 0.0):.1%}",
            "ok" if r.all_checks_pass else "FAIL",
        ]
        for r in sorted(results, key=lambda r: -r.elapsed_s)
    ]
    rows.append(["total", f"{total:.1f}", "100.0%", ""])
    return render_table(["experiment", "elapsed (s)", "share", "checks"], rows)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    ids = args.exp_ids if args.command == "run" else experiment_ids()
    profiling = bool(args.profile or args.trace)
    registry = obs.enable(trace=bool(args.trace)) if profiling else obs.get_registry()

    results: list[ExperimentResult] = []
    any_failed = False
    try:
        for position, exp_id in enumerate(ids, 1):
            print(f"[{position}/{len(ids)}] {exp_id} ...", flush=True)
            start = time.perf_counter()
            with registry.phase(f"experiment.{exp_id}"):
                result = run_experiment(exp_id)
            result.elapsed_s = time.perf_counter() - start
            results.append(result)
            print(result.to_text())
            print(f"({result.elapsed_s:.1f}s)\n")
            if not result.all_checks_pass:
                any_failed = True

        if len(results) > 1:
            print(_timing_table(results))
            print()

        if getattr(args, "json", None):
            with open(args.json, "w") as handle:
                handle.write(_as_json(results))
            print(f"wrote {args.json}")
        if args.command == "report":
            from repro.harness.markdown import report_document

            with open(args.out, "w") as handle:
                handle.write(report_document(results))
            print(f"wrote {args.out}")
        if args.profile:
            obs.write_profile(
                args.profile,
                registry,
                command=" ".join(["quicknn-experiments", args.command, *ids]),
                total_seconds=sum(r.elapsed_s for r in results),
                experiments=[
                    {
                        "exp_id": r.exp_id,
                        "title": r.title,
                        "elapsed_s": r.elapsed_s,
                        "all_checks_pass": r.all_checks_pass,
                    }
                    for r in results
                ],
            )
            print(f"wrote {args.profile}")
        if args.trace:
            obs.write_chrome_trace(args.trace, registry)
            print(f"wrote {args.trace}")
    finally:
        if profiling:
            obs.disable()
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
