"""Command-line entry point: ``quicknn-experiments``.

Usage::

    quicknn-experiments list                  # show all experiment ids
    quicknn-experiments run fig12 fig13       # regenerate one or more
    quicknn-experiments all [--json out.json] # regenerate the whole evaluation
    quicknn-experiments all --workers 4       # fan out across processes
    quicknn-experiments report out.md         # markdown reproducibility report
    quicknn-experiments bench-diff OLD NEW    # trajectory regression gate

Every experiment-running subcommand also accepts the observability
flags (see ``docs/observability.md``)::

    --profile prof.json    # per-experiment wall-clock + subsystem metrics
    --trace out.trace.json # Chrome trace_event timeline (chrome://tracing)

``run`` and ``all`` additionally take ``--workers N`` to run the
experiments in N processes; results are gathered back through
:meth:`ExperimentResult.to_dict` and reported in submission order.
Profiling flags need a single process (metrics registries are
per-process) and reject ``--workers > 1``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import repro.obs as obs
from repro.harness.registry import experiment_ids, run_experiment
from repro.harness.result import ExperimentResult, render_table


def _add_workers_flag(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="run experiments in N parallel processes (default: 1; "
        "incompatible with --profile/--trace, which need one process)",
    )


def _add_output_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--json", metavar="PATH", help="also write the results as JSON")
    sub.add_argument(
        "--profile",
        metavar="PATH",
        help="write a JSON profile: per-experiment wall-clock + subsystem "
        "metrics (single process only — rejected with --workers > 1)",
    )
    sub.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace_event timeline (load in chrome://tracing; "
        "single process only — rejected with --workers > 1)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quicknn-experiments",
        description="Regenerate the tables and figures of the QuickNN paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument(
        "exp_ids",
        nargs="+",
        choices=experiment_ids(),
        metavar="exp_id",
        help="experiment id(s); see `quicknn-experiments list`",
    )
    _add_output_flags(run)
    _add_workers_flag(run)
    everything = sub.add_parser("all", help="run every experiment in paper order")
    _add_output_flags(everything)
    _add_workers_flag(everything)
    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("out", metavar="PATH", help="markdown file to write")
    _add_output_flags(report)
    diff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json trajectory files and flag regressions",
    )
    diff.add_argument("old", metavar="OLD", help="baseline trajectory file")
    diff.add_argument("new", metavar="NEW", help="candidate trajectory file")
    diff.add_argument(
        "--min-spread",
        type=float,
        default=None,
        metavar="FRAC",
        help="noise floor as a fraction (default: 0.10); the effective "
        "tolerance per benchmark is max(recorded spreads, this floor)",
    )
    diff.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (for noisy CI runners)",
    )
    return parser


def _as_json(results: list[ExperimentResult]) -> str:
    return json.dumps([r.to_dict() for r in results], indent=2, default=str)


def _timing_table(results: list[ExperimentResult]) -> str:
    """Per-experiment elapsed/total summary (printed after multi-runs)."""
    total = sum(r.elapsed_s for r in results)
    rows = [
        [
            r.exp_id,
            f"{r.elapsed_s:.1f}",
            f"{(r.elapsed_s / total if total else 0.0):.1%}",
            "ok" if r.all_checks_pass else "FAIL",
        ]
        for r in sorted(results, key=lambda r: -r.elapsed_s)
    ]
    rows.append(["total", f"{total:.1f}", "100.0%", ""])
    return render_table(["experiment", "elapsed (s)", "share", "checks"], rows)


def _run_one_worker(exp_id: str) -> dict:
    """Run one experiment in a worker process.

    Returns the :meth:`ExperimentResult.to_dict` view — plain data that
    crosses the process boundary without pickling the result class.
    """
    start = time.perf_counter()
    result = run_experiment(exp_id)
    result.elapsed_s = time.perf_counter() - start
    return result.to_dict()


def _run_parallel(ids: list[str], workers: int) -> list[ExperimentResult]:
    """Fan ``ids`` out over a process pool; results in submission order.

    Uses the ``fork`` start method where available so in-process state
    (registered experiments, monkeypatched hooks in tests) carries into
    the workers.  Progress lines are printed in completion order with a
    coherent ``[done/total]`` counter.
    """
    import multiprocessing as mp
    from concurrent.futures import ProcessPoolExecutor, as_completed

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # platforms without fork
        ctx = mp.get_context()
    total = len(ids)
    gathered: list[ExperimentResult | None] = [None] * total
    with ProcessPoolExecutor(max_workers=min(workers, total), mp_context=ctx) as pool:
        futures = {
            pool.submit(_run_one_worker, exp_id): position
            for position, exp_id in enumerate(ids)
        }
        done = 0
        for future in as_completed(futures):
            position = futures[future]
            payload = future.result()
            done += 1
            print(
                f"[{done}/{total}] {ids[position]} ({payload['elapsed_s']:.1f}s)",
                flush=True,
            )
            gathered[position] = ExperimentResult.from_dict(payload)
    return [r for r in gathered if r is not None]


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for exp_id in experiment_ids():
            print(exp_id)
        return 0

    if args.command == "bench-diff":
        from repro.harness.bench_diff import DEFAULT_MIN_SPREAD, run_diff

        min_spread = (
            DEFAULT_MIN_SPREAD if args.min_spread is None else args.min_spread
        )
        return run_diff(
            args.old, args.new, min_spread=min_spread, warn_only=args.warn_only
        )

    ids = args.exp_ids if args.command == "run" else experiment_ids()
    profiling = bool(args.profile or args.trace)
    workers = getattr(args, "workers", 1)
    if workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    if workers > 1 and profiling:
        print(
            "--profile/--trace need a single process (metrics registries are "
            "per-process); drop --workers or set it to 1",
            file=sys.stderr,
        )
        return 2
    registry = obs.enable(trace=bool(args.trace)) if profiling else obs.get_registry()

    results: list[ExperimentResult] = []
    any_failed = False
    try:
        if workers > 1:
            results = _run_parallel(list(ids), workers)
            for result in results:
                print(result.to_text())
                print(f"({result.elapsed_s:.1f}s)\n")
                if not result.all_checks_pass:
                    any_failed = True
        else:
            for position, exp_id in enumerate(ids, 1):
                print(f"[{position}/{len(ids)}] {exp_id} ...", flush=True)
                start = time.perf_counter()
                with registry.phase(f"experiment.{exp_id}"):
                    result = run_experiment(exp_id)
                result.elapsed_s = time.perf_counter() - start
                results.append(result)
                print(result.to_text())
                print(f"({result.elapsed_s:.1f}s)\n")
                if not result.all_checks_pass:
                    any_failed = True

        if len(results) > 1:
            print(_timing_table(results))
            print()

        if getattr(args, "json", None):
            with open(args.json, "w") as handle:
                handle.write(_as_json(results))
            print(f"wrote {args.json}")
        if args.command == "report":
            from repro.harness.markdown import report_document

            with open(args.out, "w") as handle:
                handle.write(report_document(results))
            print(f"wrote {args.out}")
        if args.profile:
            obs.write_profile(
                args.profile,
                registry,
                command=" ".join(["quicknn-experiments", args.command, *ids]),
                total_seconds=sum(r.elapsed_s for r in results),
                experiments=[
                    {
                        "exp_id": r.exp_id,
                        "title": r.title,
                        "elapsed_s": r.elapsed_s,
                        "all_checks_pass": r.all_checks_pass,
                    }
                    for r in results
                ],
            )
            print(f"wrote {args.profile}")
        if args.trace:
            obs.write_chrome_trace(args.trace, registry)
            print(f"wrote {args.trace}")
    finally:
        if profiling:
            obs.disable()
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
