"""Extension experiments beyond the paper's evaluation.

Three studies the paper motivates but does not measure:

* ``ext-ablation`` — which of QuickNN's memory optimizations buys what
  (the design choices of Sections 4.1-4.2, ablated one at a time).
* ``ext-incremental`` — incremental tree update vs from-scratch
  construction as frames grow (Section 4.4 / 7.2: "expanding ... to
  1M points, tree construction will grow to be the more significant
  part of TBuild, and incremental tree update will be essential").
* ``ext-hbm`` — QuickNN behind a near-chip HBM stack (Section 7.2's
  proposed fix for the external-bandwidth bottleneck).
"""

from __future__ import annotations

from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig, SimpleKdArch, SimpleKdConfig
from repro.arch.exact_arch import ExactKdArch
from repro.datasets import lidar_frame_pair
from repro.harness.result import ExperimentResult
from repro.sim import DramTimingParams


def ext_ablation(n_points: int = 30_000, k: int = 8, n_fus: int = 64,
                 *, seed: int = 0) -> ExperimentResult:
    """Ablate QuickNN's memory optimizations one at a time.

    Each row disables exactly one mechanism and reports the slowdown
    and extra DRAM traffic relative to the full design; the final row
    (Simple k-d) drops all of them at once.
    """
    ref, qry = lidar_frame_pair(n_points, seed=seed)

    variants = [
        ("full QuickNN", QuickNNConfig(n_fus=n_fus)),
        ("no stream snooping (Rd2 back)", QuickNNConfig(n_fus=n_fus, enable_snooping=False)),
        ("no write gather (w_n=1)", QuickNNConfig(n_fus=n_fus, write_gather_capacity=1)),
        ("no read gather (r_n=1)", QuickNNConfig(n_fus=n_fus, read_gather_capacity=1)),
    ]
    rows = []
    base_cycles = base_words = None
    slowdowns: dict[str, float] = {}
    for name, config in variants:
        _, report = QuickNN(config).run(ref, qry, k)
        if base_cycles is None:
            base_cycles, base_words = report.total_cycles, report.memory_words
        slowdowns[name] = report.total_cycles / base_cycles
        rows.append([
            name, report.total_cycles, slowdowns[name],
            report.memory_words / base_words,
        ])

    _, simple = SimpleKdArch(SimpleKdConfig(n_fus=n_fus)).run(ref, qry, k)
    slowdowns["simple"] = simple.total_cycles / base_cycles
    rows.append([
        "all of the above (Simple k-d)", simple.total_cycles,
        slowdowns["simple"], simple.memory_words / base_words,
    ])

    return ExperimentResult(
        exp_id="ext-ablation",
        title="Ablation of QuickNN's memory optimizations (64 FUs, 30k, k=8)",
        headers=["variant", "cycles", "x slowdown", "x DRAM words"],
        rows=rows,
        paper_says=(
            "(extension) Sections 4.1-4.2 argue each mechanism is "
            "necessary; Figure 12 only shows the all-or-nothing contrast"
        ),
        shape_checks={
            "losing snooping hurts": slowdowns["no stream snooping (Rd2 back)"] > 1.0,
            "losing write gather hurts": slowdowns["no write gather (w_n=1)"] > 1.0,
            "losing read gather hurts most": slowdowns["no read gather (r_n=1)"]
            > max(slowdowns["no stream snooping (Rd2 back)"],
                  slowdowns["no write gather (w_n=1)"]),
            "losing everything is far worse than any single ablation":
                slowdowns["simple"] > 2.0 * slowdowns["no read gather (r_n=1)"],
        },
    )


def ext_incremental_scaling(
    frame_sizes: tuple[int, ...] = (10_000, 30_000, 100_000),
    k: int = 8,
    n_fus: int = 128,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Tree construction cost: from-scratch rebuild vs incremental update.

    Reports, per frame size, the construction-phase cycles of both
    TBuild strategies and construction's share of the frame under the
    rebuild strategy — the quantity the paper says stays "less than a
    quarter" below 100k but grows beyond.
    """
    rows = []
    construct_share: dict[int, float] = {}
    savings: dict[int, float] = {}
    for n in frame_sizes:
        ref, qry = lidar_frame_pair(n, seed=seed)
        _, rebuild = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
        _, incremental = QuickNN(
            QuickNNConfig(n_fus=n_fus, tree_strategy="incremental")
        ).run(ref, qry, k)
        build_cycles = rebuild.phase_cycles["sample"] + rebuild.phase_cycles["construct"]
        incr_cycles = incremental.phase_cycles["sample"] + incremental.phase_cycles["construct"]
        construct_share[n] = build_cycles / rebuild.total_cycles
        savings[n] = build_cycles / max(incr_cycles, 1)
        rows.append([
            n, build_cycles, incr_cycles, construct_share[n],
            rebuild.fps, incremental.fps,
        ])

    big, small = max(frame_sizes), min(frame_sizes)
    return ExperimentResult(
        exp_id="ext-incremental",
        title="Tree construction: rebuild vs incremental update (128 FUs)",
        headers=["points", "rebuild cyc", "incremental cyc",
                 "construct share", "rebuild FPS", "incremental FPS"],
        rows=rows,
        paper_says=(
            "(extension) construction is <1/4 of TBuild below 100k points "
            "but grows to dominate toward 1M, where incremental update "
            "becomes essential (Sections 4.4, 7.2)"
        ),
        shape_checks={
            "construction share grows with frame size": construct_share[big]
            > construct_share[small],
            "construction share small at 30k": construct_share.get(30_000, 0.0) < 0.25
            if 30_000 in construct_share else True,
            "incremental cheaper than rebuild at every size": all(
                s > 1.0 for s in savings.values()
            ),
            "incremental saves more at scale": savings[big] >= savings[small],
        },
    )


def ext_banks(
    n_points: int = 6_000,
    bucket_capacity: int = 32,
    bank_counts: tuple[int, ...] = (2, 4, 8),
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Traversal speedup vs bank count: the paper's "2n workers per n banks".

    Figure 9 fixes 4 banks; the paper asserts "similar conclusions can
    be made for more banks" and that "n cache banks supports up to 2n
    workers".  This extension sweeps the bank count and checks the 2n
    rule directly: the worker count where speedup saturates should
    scale with the banks.
    """
    import numpy as np

    from repro.arch import BankedTreeCache, TreeCacheConfig, simulate_traversal
    from repro.datasets import lidar_frame
    from repro.kdtree import KdTreeConfig, build_tree

    frame = lidar_frame(n_points, seed=seed)
    tree, _ = build_tree(frame, KdTreeConfig(bucket_capacity=bucket_capacity))
    xyz = frame.xyz
    points = xyz[np.argsort(np.arctan2(xyz[:, 1], xyz[:, 0]), kind="stable")]

    rows = []
    speedups: dict[tuple[int, int], float] = {}
    for banks in bank_counts:
        # The group partition needs one subtree per bank, so the
        # replicated boundary deepens with the bank count (2^levels
        # subtrees at the boundary).
        replicated = max(1, int(np.ceil(np.log2(banks))))
        cache = BankedTreeCache(
            tree,
            TreeCacheConfig(n_banks=banks, replicated_levels=replicated),
            rng=np.random.default_rng(seed),
        )
        base = None
        row: list = [banks]
        for workers in worker_counts:
            report = simulate_traversal(tree, points, cache, n_workers=workers)
            if base is None:
                base = report.cycles
            speedups[(banks, workers)] = base / report.cycles
            row.append(speedups[(banks, workers)])
        rows.append(row)

    def sustains(banks: int, threshold: float = 0.75) -> bool:
        """The 2n rule: ``banks`` banks keep ~2*banks workers efficient."""
        workers = 2 * banks
        if (banks, workers) not in speedups:
            return True  # not measured at this scale
        return speedups[(banks, workers)] / workers >= threshold

    max_w = max(worker_counts)
    lo_b, hi_b = min(bank_counts), max(bank_counts)
    return ExperimentResult(
        exp_id="ext-banks",
        title="Traversal speedup vs cache banks (group partition)",
        headers=["banks"] + [f"{w}w" for w in worker_counts],
        rows=rows,
        paper_says=(
            '(extension) Section 4.3: "n cache banks supports up to 2n '
            'workers for a 2n increase in throughput"; Figure 9 shows 4 '
            "banks only"
        ),
        shape_checks={
            f"{b} banks sustain ~{2 * b} workers": sustains(b) for b in bank_counts
        } | {
            "more banks help at high worker counts": speedups[(hi_b, max_w)]
            >= speedups[(lo_b, max_w)],
        },
    )


def ext_pareto(
    n_points: int = 15_000,
    k: int = 8,
    n_fus: int = 64,
    bucket_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024),
    *,
    seed: int = 0,
) -> ExperimentResult:
    """The accuracy-throughput Pareto frontier of the bucket size.

    The paper picks B_N = 256 by eyeballing Figure 3 against latency;
    this extension computes the actual frontier — recall and FPS per
    bucket size on the same frames — so the operating point can be
    chosen quantitatively for any accuracy target.
    """
    from repro.analysis.accuracy import knn_recall
    from repro.baselines import knn_bruteforce
    from repro.kdtree import KdTreeConfig

    ref, qry = lidar_frame_pair(n_points, seed=seed)
    exact = knn_bruteforce(ref, qry, k)

    rows = []
    recalls: dict[int, float] = {}
    fps: dict[int, float] = {}
    for bucket in bucket_sizes:
        config = QuickNNConfig(n_fus=n_fus, tree=KdTreeConfig(bucket_capacity=bucket))
        result, report = QuickNN(config).run(ref, qry, k)
        recalls[bucket] = knn_recall(result, exact, k)
        fps[bucket] = report.fps
        rows.append([bucket, report.fps, recalls[bucket], report.memory_words])

    sizes = list(bucket_sizes)
    recall_monotone = all(
        recalls[a] <= recalls[b] + 0.03 for a, b in zip(sizes, sizes[1:])
    )
    fps_eventually_falls = fps[sizes[-1]] < fps[sizes[0]]
    return ExperimentResult(
        exp_id="ext-pareto",
        title="Bucket size: accuracy-throughput Pareto frontier",
        headers=["B_N", "FPS", "recall@k", "bus words"],
        rows=rows,
        paper_says=(
            "(extension) quantifies the Figure 3 vs Table 5 trade the "
            "paper resolves by picking B_N=256"
        ),
        shape_checks={
            "accuracy rises with bucket size": recall_monotone,
            "throughput eventually falls with bucket size": fps_eventually_falls,
            "paper's 256 sits on the frontier": recalls[256] > recalls[64]
            and fps[256] > fps[sizes[-1]],
        },
    )


def ext_exact_search(n_points: int = 15_000, k: int = 8, n_fus: int = 64,
                     *, seed: int = 0) -> ExperimentResult:
    """What does exactness cost on QuickNN's memory system?

    Three designs of the same size: the approximate QuickNN, an
    exact-search variant (same memory optimizations, backtracking
    TSearch), and the exact linear baseline.  Quantifies the abstract's
    approximate-vs-exact trade: the approximate search trades a bounded
    accuracy loss for a multiple in throughput, while even the exact
    tree search dwarfs the linear design.
    """
    from repro.analysis.accuracy import knn_recall
    from repro.baselines import knn_bruteforce

    ref, qry = lidar_frame_pair(n_points, seed=seed)
    exact_truth = knn_bruteforce(ref, qry, k)

    approx_res, approx = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
    exact_res, exact = ExactKdArch(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
    linear = LinearArch(LinearArchConfig(n_fus=n_fus)).simulate(n_points, n_points, k)

    approx_recall = knn_recall(approx_res, exact_truth, k)
    exact_recall = knn_recall(exact_res, exact_truth, k)
    rows = [
        ["QuickNN (approximate)", approx.fps, approx_recall, approx.memory_words],
        ["Exact k-d (backtracking)", exact.fps, exact_recall, exact.memory_words],
        ["Linear (exact)", linear.fps, 1.0, linear.memory_words],
    ]
    exact_slowdown = approx.fps / exact.fps
    return ExperimentResult(
        exp_id="ext-exact",
        title=f"The price of exactness ({n_fus} FUs, {n_points//1000}k points)",
        headers=["design", "FPS", "recall@k", "bus words"],
        rows=rows,
        paper_says=(
            "(extension) the abstract's approximate-vs-exact trade, with "
            "the exact search given QuickNN's own memory system; mean "
            f"buckets visited: {exact.notes['mean_buckets_visited']:.1f}"
        ),
        shape_checks={
            "backtracking search is truly exact": exact_recall >= 0.999,
            "approximation buys a real speedup": 1.3 <= exact_slowdown <= 8.0,
            "exact tree search still beats linear by >=3x": exact.fps
            >= 3.0 * linear.fps,
        },
    )


def ext_sensitivity(n_points: int = 15_000, k: int = 8, n_fus: int = 64,
                    *, seed: int = 0) -> ExperimentResult:
    """Are the reproduction's conclusions robust to its model constants?

    The transaction-level model has calibration constants a real RTL
    does not (row-miss penalty, bucket kickoff, write-gather depth).
    This experiment perturbs each by -50% / +100% and re-measures the
    headline ratio (QuickNN vs the linear architecture), checking the
    paper's conclusion — an order-of-magnitude win — survives every
    perturbation.
    """
    ref, qry = lidar_frame_pair(n_points, seed=seed)

    def ratio(quick_cfg: QuickNNConfig) -> float:
        _, quick = QuickNN(quick_cfg).run(ref, qry, k)
        linear = LinearArch(LinearArchConfig(n_fus=n_fus, dram=quick_cfg.dram)).simulate(
            n_points, n_points, k)
        return linear.total_cycles / quick.total_cycles

    base = QuickNNConfig(n_fus=n_fus)
    variants: list[tuple[str, QuickNNConfig]] = [
        ("baseline", base),
        ("row-miss penalty x0.5", QuickNNConfig(
            n_fus=n_fus, dram=DramTimingParams(row_miss_cycles=6))),
        ("row-miss penalty x2", QuickNNConfig(
            n_fus=n_fus, dram=DramTimingParams(row_miss_cycles=24))),
        ("bucket kickoff x0.5", QuickNNConfig(n_fus=n_fus, bucket_kickoff_cycles=12)),
        ("bucket kickoff x2", QuickNNConfig(n_fus=n_fus, bucket_kickoff_cycles=48)),
        ("write-gather depth x0.5", QuickNNConfig(n_fus=n_fus, write_gather_capacity=4)),
        ("write-gather depth x2", QuickNNConfig(n_fus=n_fus, write_gather_capacity=16)),
    ]
    rows = []
    ratios = {}
    for name, config in variants:
        ratios[name] = ratio(config)
        rows.append([name, ratios[name]])

    base_ratio = ratios["baseline"]
    spread = max(ratios.values()) / min(ratios.values())
    return ExperimentResult(
        exp_id="ext-sensitivity",
        title="Sensitivity of the QuickNN-vs-linear speedup to model constants",
        headers=["model perturbation", "speedup vs linear"],
        rows=rows,
        paper_says=(
            "(extension) robustness check: the paper's order-of-magnitude "
            "conclusion should not hinge on any single calibration constant"
        ),
        shape_checks={
            "baseline speedup is order-of-magnitude": base_ratio >= 10.0,
            "every perturbation keeps >=10x": all(r >= 10.0 for r in ratios.values()),
            "conclusion insensitive (spread under 1.6x)": spread <= 1.6,
        },
    )


def ext_crosscheck(n_points: int = 30_000, k: int = 8, n_fus: int = 64,
                   *, seed: int = 0) -> ExperimentResult:
    """Cross-check the headline results on a second environment.

    Section 6 of the paper: "to ensure our results were consistent
    across multiple situations, key benchmarks were crosschecked with
    the Ford Campus Vision and Lidar Data Set".  The analogue here:
    rerun the headline operating point on the highway scene (different
    structure statistics from the urban street) and check FPS, traffic,
    and accuracy stay in family.
    """
    from repro.analysis.accuracy import knn_recall
    from repro.baselines import knn_bruteforce

    rows = []
    fps: dict[str, float] = {}
    recall: dict[str, float] = {}
    words: dict[str, int] = {}
    for kind in ("street", "highway"):
        ref, qry = lidar_frame_pair(n_points, seed=seed, scene_kind=kind)
        result, report = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
        exact = knn_bruteforce(ref, qry, k)
        fps[kind] = report.fps
        recall[kind] = knn_recall(result, exact, k)
        words[kind] = report.memory_words
        rows.append([kind, report.fps, report.memory_words,
                     report.bandwidth_utilization, recall[kind]])

    fps_ratio = max(fps.values()) / min(fps.values())
    return ExperimentResult(
        exp_id="ext-crosscheck",
        title="Street (KITTI-like) vs highway (Ford-like) cross-check",
        headers=["scene", "FPS", "bus words", "bandwidth util", "recall@k"],
        rows=rows,
        paper_says=(
            "(extension) Section 6: key benchmarks cross-checked on the "
            "Ford Campus dataset were consistent"
        ),
        shape_checks={
            "FPS consistent across scenes (within ~30%)": fps_ratio <= 1.3,
            "traffic consistent across scenes": max(words.values())
            <= 1.3 * min(words.values()),
            "accuracy in family on both scenes": all(
                r >= 0.45 for r in recall.values()
            ),
        },
    )


def ext_hbm(
    frame_sizes: tuple[int, ...] = (30_000, 100_000),
    k: int = 8,
    n_fus: int = 128,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """QuickNN behind HBM: does near-chip memory remove the bottleneck?"""
    rows = []
    speedup: dict[int, float] = {}
    hbm_util: dict[int, float] = {}
    for n in frame_sizes:
        ref, qry = lidar_frame_pair(n, seed=seed)
        _, ddr4 = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
        _, hbm = QuickNN(
            QuickNNConfig(n_fus=n_fus, dram=DramTimingParams.hbm2())
        ).run(ref, qry, k)
        speedup[n] = ddr4.total_cycles / hbm.total_cycles
        hbm_util[n] = hbm.bandwidth_utilization
        rows.append([n, ddr4.fps, hbm.fps, speedup[n],
                     ddr4.bandwidth_utilization, hbm_util[n]])

    big = max(frame_sizes)
    return ExperimentResult(
        exp_id="ext-hbm",
        title="QuickNN on DDR4 vs HBM (128 FUs, k=8)",
        headers=["points", "DDR4 FPS", "HBM FPS", "x speedup",
                 "DDR4 util", "HBM util"],
        rows=rows,
        paper_says=(
            "(extension) Section 7.2: the dominant bottleneck is external "
            "bandwidth; near-chip memory such as HBM would alleviate it"
        ),
        shape_checks={
            "HBM speeds up every size": all(s > 1.3 for s in speedup.values()),
            "design becomes compute-bound on HBM": hbm_util[big] < 0.5,
            "HBM sustains >=10 FPS at 100k points": rows[-1][2] >= 10.0,
        },
    )


def ext_icp_registration(n_points: int = 5_000, *, seed: int = 0) -> ExperimentResult:
    """End-to-end ICP registration across kNN backends.

    The paper's motivating application (Section 2) is frame-to-frame
    registration; this experiment closes the loop: align a perturbed
    copy of a cloud back onto the original with each correspondence
    backend and compare convergence, iteration count, and pose error.
    The approximate single-bucket search should land the same pose as
    the exact searches — the claim behind using it inside ICP at all.
    """
    import numpy as np

    from repro.datasets.synthetic import perturbed_pair
    from repro.icp import IcpConfig, icp_register

    rng = np.random.default_rng(seed)
    ref, qry, true = perturbed_pair(n_points, rng=rng, noise_std=0.0)

    rows = []
    pose_errors: dict[str, float] = {}
    converged: dict[str, bool] = {}
    iterations: dict[str, int] = {}
    for backend in ("approx", "exact", "bruteforce"):
        result = icp_register(ref, qry, IcpConfig(knn=backend))
        angle_err = abs(result.transform.yaw() - true.yaw())
        trans_err = float(np.linalg.norm(result.transform.translation - true.translation))
        pose_errors[backend] = trans_err
        converged[backend] = result.converged
        iterations[backend] = result.iterations
        rows.append([
            backend, result.iterations, result.converged,
            result.rms_error, angle_err, trans_err,
        ])

    return ExperimentResult(
        exp_id="ext-icp",
        title=f"ICP registration by kNN backend ({n_points} points, known pose)",
        headers=["backend", "iterations", "converged", "final RMS",
                 "yaw error (rad)", "translation error (m)"],
        rows=rows,
        paper_says=(
            "(extension) Section 2 motivates QuickNN with frame-to-frame "
            "ICP; the approximate search must not degrade the recovered pose"
        ),
        shape_checks={
            "every backend converges": all(converged.values()),
            "approx recovers the pose": pose_errors["approx"] < 1e-2,
            "approx matches exact pose closely":
                abs(pose_errors["approx"] - pose_errors["exact"]) < 1e-2,
            "approx needs no more than 2x the exact iterations":
                iterations["approx"] <= 2 * max(iterations["exact"], 1),
        },
    )
