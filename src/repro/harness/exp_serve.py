"""Serving-layer load experiment: micro-batching and sharding throughput.

Not a figure from the paper — QuickNN's evaluation stops at the
accelerator — but the serving question its throughput architecture
implies: given concurrent queriers over one 30k-point frame, how much
does coalescing their queries into engine-sized batches buy, and does
sharding the tree change the answers?  Three closed-loop arms over the
same frame, plus a deliberately overloaded open-loop arm to show that
admission control sheds typed rejections instead of degrading answers
silently.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import lidar_frame
from repro.harness.result import ExperimentResult
from repro.kdtree import build_flat, knn_exact_batched
from repro.serve import KnnServer, ServeConfig, run_closed_loop, run_open_loop


def serve_fleet(
    n_tenants: int = 16,
    n_frames: int = 3,
    points_per_frame: int = 2000,
    queries_per_frame: int = 32,
    max_resident: int | None = None,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Many concurrent drives on one bounded machine, zero rebuilds.

    Replays ``n_tenants`` synthetic drives through the per-tenant
    session layer with residency capped at half the fleet, so sessions
    must spill to disk and restore mid-drive.  The shape checks are the
    session layer's contract: every frame after a session's first goes
    through the incremental fast path (``build.calls`` stays at one per
    tenant), spilled sessions come back and keep serving, and no
    request errors.
    """
    from repro.obs import MetricsRegistry, use_registry
    from repro.serve.fleet import FleetConfig, run_fleet
    from repro.serve.sessions import SessionConfig

    if max_resident is None:
        max_resident = max(1, n_tenants // 2)
    config = FleetConfig(
        n_tenants=n_tenants,
        n_frames=n_frames,
        points_per_frame=points_per_frame,
        queries_per_frame=queries_per_frame,
        seed=seed,
        distinct_drives=min(4, n_tenants),
        session=SessionConfig(
            serve=ServeConfig(max_delay_s=0.0),
            max_resident=max_resident,
        ),
    )
    with use_registry(MetricsRegistry()):
        report = run_fleet(config)

    agg = report.aggregate()
    counters = report.manager_stats["counters"]
    spills = int(counters.get("serve.sessions.spilled", 0))
    restores = int(counters.get("serve.sessions.restored", 0))
    rows = [
        ["tenants", n_tenants],
        ["frames per tenant", n_frames],
        ["max resident sessions", max_resident],
        ["frames observed", report.frames_observed],
        ["requests completed", agg["completed"]],
        ["requests shed", agg["shed"]],
        ["request errors", agg["errors"]],
        ["full tree builds", int(report.full_builds)],
        ["incremental updates", int(report.incremental_updates)],
        ["sessions spilled", spills],
        ["sessions restored", restores],
        ["wall seconds", round(report.duration_s, 2)],
    ]
    return ExperimentResult(
        exp_id="serve-fleet",
        title="Session fleet: concurrent drives, incremental updates, "
        "spill/restore",
        headers=["metric", "value"],
        rows=rows,
        paper_says=(
            "QuickNN keeps one evolving index per LiDAR stream and updates "
            "it incrementally instead of rebuilding (Sec 4.4); hosting many "
            "such streams on one machine must preserve that property per "
            "stream"
        ),
        notes=(
            f"residency capped at {max_resident}/{n_tenants}; spill/restore "
            f"churn {spills}/{restores}"
        ),
        shape_checks={
            "one full build per tenant, none after": report.zero_rebuild
            is True,
            "every frame observed": report.frames_observed
            == n_tenants * n_frames,
            "zero errored requests": agg["errors"] == 0
            and report.frame_errors == 0,
            "residency pressure forced spills": spills > 0,
            "spilled sessions restored and kept serving": restores > 0,
        },
    )


def serve_load(
    n_points: int = 30_000,
    n_queries: int = 2048,
    k: int = 8,
    concurrency: int = 64,
    n_shards: int = 4,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Throughput of one-at-a-time vs micro-batched vs sharded serving.

    Every arm drives the same exact-mode queries through a
    :class:`~repro.serve.server.KnnServer`; only the submission pattern
    and shard count change.  The identity check compares the sharded
    server's answers bit-for-bit against the unsharded engine's
    ``knn_exact_batched`` ground truth — sharding and serving must not
    change exact answers.
    """
    reference = lidar_frame(n_points, seed=seed).xyz
    rng = np.random.default_rng(seed + 1)
    queries = (
        reference[rng.permutation(reference.shape[0])[:n_queries]]
        + rng.normal(scale=0.05, size=(n_queries, 3))
    )

    flat, _ = build_flat(reference)
    truth, _ = knn_exact_batched(flat, queries, k)

    rows = []
    throughput = {}
    errors_total = 0
    identical = True
    for label, shards, conc in (
        ("one-at-a-time", 1, 1),
        ("micro-batched", 1, concurrency),
        (f"sharded x{n_shards}", n_shards, concurrency),
    ):
        config = ServeConfig(n_shards=shards, max_queue=max(4096, n_queries))
        with KnnServer(reference, config) as server:
            report = run_closed_loop(server, queries, k, concurrency=conc)
            check = server.query(queries, k)
        identical &= bool(
            np.array_equal(check.indices, truth.indices)
            and np.array_equal(check.distances, truth.distances)
        )
        throughput[label] = report.throughput_qps
        errors_total += report.errors
        rows.append(
            [
                label,
                shards,
                conc,
                report.completed,
                report.shed,
                report.errors,
                round(report.throughput_qps),
                round(report.percentile(50), 2),
                round(report.percentile(99), 2),
            ]
        )

    # Overload arm: offer far beyond capacity into a small queue; the
    # server must answer what it admits and shed the rest as typed
    # Overloaded rejections — the errors column stays zero.
    overload_config = ServeConfig(n_shards=1, max_queue=64, request_timeout_s=None)
    with KnnServer(reference, overload_config) as server:
        overload = run_open_loop(
            server, queries, k, rate_qps=20_000.0, duration_s=0.5, seed=seed
        )
    errors_total += overload.errors
    rows.append(
        [
            "overloaded",
            1,
            "open-loop",
            overload.completed,
            overload.shed,
            overload.errors,
            round(overload.throughput_qps),
            round(overload.percentile(50), 2),
            round(overload.percentile(99), 2),
        ]
    )

    speedup = throughput["micro-batched"] / max(throughput["one-at-a-time"], 1e-9)
    return ExperimentResult(
        exp_id="serve-load",
        title="Serving throughput: micro-batching and sharding on one frame",
        headers=[
            "arm", "shards", "clients", "completed", "shed", "errors",
            "rows/s", "p50 ms", "p99 ms",
        ],
        rows=rows,
        paper_says=(
            "QuickNN's throughput comes from batching parallel queries "
            "against a shared tree; the software serving analogue should "
            "show the same coalescing win without changing exact answers"
        ),
        notes=f"micro-batched vs one-at-a-time speedup: {speedup:.1f}x",
        shape_checks={
            "micro-batching >= 3x one-at-a-time throughput": speedup >= 3.0,
            "zero errored requests in every arm": errors_total == 0,
            "sharded serving bit-identical to unsharded exact engine": identical,
            "overload sheds typed rejections": overload.shed > 0,
            "overload still answers admitted requests": overload.completed > 0,
        },
    )
