"""Memory-system experiments: Figures 8, 12, and 13."""

from __future__ import annotations

import numpy as np

from repro.arch import (
    LinearArch,
    LinearArchConfig,
    QuickNN,
    QuickNNConfig,
    SimpleKdArch,
    SimpleKdConfig,
    WriteGatherCache,
)
from repro.arch.bucket_store import BucketBlockStore
from repro.datasets import lidar_frame, lidar_frame_pair
from repro.harness.result import ExperimentResult
from repro.kdtree import KdTreeConfig, build_tree
from repro.sim import AddressAllocator, DramModel


def _placement_stream(n_points: int, bucket_capacity: int, seed: int) -> tuple[np.ndarray, int]:
    """Bucket-destination sequence of a frame's placement phase."""
    frame = lidar_frame(n_points, seed=seed)
    tree, _ = build_tree(frame, KdTreeConfig(bucket_capacity=bucket_capacity))
    leaf_to_bucket = {n.index: n.bucket_id for n in tree.nodes if n.is_leaf}
    leaves = tree.descend_batch(frame.xyz)
    stream = np.array([leaf_to_bucket[int(l)] for l in leaves], dtype=np.int64)
    return stream, len(tree.buckets)


def _write_stream_cycles(
    stream: np.ndarray, n_buckets: int, w_b: int, w_n: int, block_points: int
) -> int:
    """DRAM cycles to commit a placement stream through a w_b x w_n cache."""
    dram = DramModel()
    store = BucketBlockStore(
        AddressAllocator(), n_buckets=n_buckets, block_points=block_points
    )
    cache = WriteGatherCache(w_b, w_n)
    cycles = 0
    for event in cache.process_stream(stream):
        for span in store.append(event.bucket_id, event.count):
            cycles += dram.access("Wr1", span.addr, span.nbytes, write=True)
    return cycles


def fig8_write_gather(
    n_points: int = 30_000,
    bucket_capacity: int = 256,
    slot_counts: tuple[int, ...] = (2, 8, 32, 128),
    slot_capacities: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 8: memory-access speedup of the write-gather cache.

    The paper's configuration: KITTI-like 30k-point frames, 256 points
    per bucket, 128 buckets.  Speedup is relative to committing the same
    placement stream with no gathering (one random write per point).
    """
    stream, n_buckets = _placement_stream(n_points, bucket_capacity, seed)
    baseline = _write_stream_cycles(stream, n_buckets, 1, 1, bucket_capacity)

    rows = []
    speedup = {}
    for w_b in slot_counts:
        row: list = [w_b]
        for w_n in slot_capacities:
            cycles = _write_stream_cycles(stream, n_buckets, w_b, w_n, bucket_capacity)
            s = baseline / cycles
            speedup[(w_b, w_n)] = s
            row.append(s)
        rows.append(row)

    max_b, max_n = max(slot_counts), max(slot_capacities)
    mid_n = 4 if 4 in slot_capacities else slot_capacities[len(slot_capacities) // 2]
    monotone_in_b = all(
        speedup[(slot_counts[i], mid_n)] <= speedup[(slot_counts[i + 1], mid_n)] + 0.05
        for i in range(len(slot_counts) - 1)
    )
    return ExperimentResult(
        exp_id="fig8",
        title="Write-gather cache: external-memory-access speedup",
        headers=["w_b \\ w_n"] + [str(n) for n in slot_capacities],
        rows=rows,
        paper_says=(
            "more buckets (w_b) matter more than deeper slots (w_n); even "
            "128 buckets x 4 points gives ~3x memory-access speedup"
        ),
        shape_checks={
            "128 x 4 config reaches ~3x": speedup[(max_b, mid_n)] >= 2.5,
            "speedup grows with w_b": monotone_in_b,
            "w_b prioritized over w_n": speedup[(max_b, mid_n)]
            > speedup[(slot_counts[0], max_n)],
        },
    )


def fig12_memory_accesses(
    n_points: int = 30_000, k: int = 8, n_fus: int = 64, *, seed: int = 0
) -> ExperimentResult:
    """Figure 12: external memory traffic of the three architectures.

    Reported in 8-byte bus words per frame (64 FUs, 30k points, k=8).
    """
    ref, qry = lidar_frame_pair(n_points, seed=seed)

    linear = LinearArch(LinearArchConfig(n_fus=n_fus)).simulate(n_points, n_points, k)
    _, simple = SimpleKdArch(SimpleKdConfig(n_fus=n_fus)).run(ref, qry, k)
    _, quick = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)

    rows = [
        ["Linear", linear.memory_words, linear.memory_words / quick.memory_words],
        ["Simple k-d", simple.memory_words, simple.memory_words / quick.memory_words],
        ["QuickNN", quick.memory_words, 1.0],
    ]
    return ExperimentResult(
        exp_id="fig12",
        title="External memory traffic per frame (words)",
        headers=["architecture", "bus words / frame", "x vs QuickNN"],
        rows=rows,
        paper_says="QuickNN cuts accesses 36x vs linear and 13x vs simple k-d",
        shape_checks={
            "ordering linear > simple > quicknn": linear.memory_words
            > simple.memory_words > quick.memory_words,
            "tens-of-x reduction vs linear": linear.memory_words
            >= 20 * quick.memory_words,
            "order-of-10x reduction vs simple k-d": simple.memory_words
            >= 8 * quick.memory_words,
        },
    )


def fig13_bandwidth_utilization(
    frame_sizes: tuple[int, ...] = (10_000, 30_000),
    fu_counts: tuple[int, ...] = (16, 32, 64, 128),
    k: int = 8,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 13: QuickNN memory bandwidth utilization on FPGA."""
    rows = []
    util: dict[tuple[int, int], float] = {}
    for n in frame_sizes:
        ref, qry = lidar_frame_pair(n, seed=seed)
        row: list = [n]
        for fus in fu_counts:
            _, report = QuickNN(QuickNNConfig(n_fus=fus)).run(ref, qry, k)
            util[(n, fus)] = report.bandwidth_utilization
            row.append(report.bandwidth_utilization)
        rows.append(row)

    big = max(frame_sizes)
    lo_fu, hi_fu = min(fu_counts), max(fu_counts)
    return ExperimentResult(
        exp_id="fig13",
        title="QuickNN memory bandwidth utilization",
        headers=["frame size"] + [f"{f} FUs" for f in fu_counts],
        rows=rows,
        paper_says="utilization reaches 76% for all >=32-FU configs at 30k points",
        shape_checks={
            "utilization >= 60% for >=32 FUs at largest frame": all(
                util[(big, f)] >= 0.60 for f in fu_counts if f >= 32
            ),
            "utilization improves with FU count": util[(big, hi_fu)]
            > util[(big, lo_fu)],
        },
    )
