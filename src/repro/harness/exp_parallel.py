"""Parallel-traversal experiment: Figure 9."""

from __future__ import annotations

import numpy as np

from repro.arch import BankedTreeCache, PartitionScheme, TreeCacheConfig, simulate_traversal
from repro.datasets import lidar_frame
from repro.harness.result import ExperimentResult
from repro.kdtree import KdTreeConfig, build_tree


def fig9_traversal(
    n_points: int = 6_000,
    bucket_capacity: int = 32,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8, 12, 16),
    n_banks: int = 4,
    replicated_levels: int = 2,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 9b: traversal speedup per cache-partition scheme.

    Models TBuild's placement pass: the frame the tree was built from
    streams through 1-16 workers in hardware order (azimuth-sorted, one
    contiguous stripe per worker), with a 4-bank lower-tree cache, for
    each partition scheme of Figure 9a.  Speedup is against the same
    scheme's single-worker run.

    Note on fidelity: the near-linear scaling to ~2 workers per bank and
    the diminishing returns beyond reproduce robustly.  The *ordering*
    of the schemes is sensitive to stream correlation and tree skew —
    ``group`` wins under the placement-faithful configuration used here,
    but the paper's pronounced ``leftright`` collapse reproduces only
    weakly (see EXPERIMENTS.md).
    """
    frame = lidar_frame(n_points, seed=seed)
    tree, _ = build_tree(frame, KdTreeConfig(bucket_capacity=bucket_capacity))
    # Hardware streams points in scan (azimuth) order.
    xyz = frame.xyz
    points = xyz[np.argsort(np.arctan2(xyz[:, 1], xyz[:, 0]), kind="stable")]

    speedups: dict[tuple[str, int], float] = {}
    rows = []
    for scheme in (PartitionScheme.RANDOM, PartitionScheme.GROUP, PartitionScheme.LEFTRIGHT):
        cache = BankedTreeCache(
            tree,
            TreeCacheConfig(
                n_banks=n_banks,
                replicated_levels=replicated_levels,
                scheme=scheme,
            ),
            rng=np.random.default_rng(seed),
        )
        base = None
        row: list = [scheme.value]
        for workers in worker_counts:
            report = simulate_traversal(tree, points, cache, n_workers=workers)
            if base is None:
                base = report.cycles
            s = base / report.cycles
            speedups[(scheme.value, workers)] = s
            row.append(s)
        rows.append(row)

    max_w = max(worker_counts)
    probe = 8 if 8 in worker_counts else max_w
    group8 = speedups[("group", probe)]
    random8 = speedups[("random", probe)]
    leftright8 = speedups[("leftright", probe)]
    return ExperimentResult(
        exp_id="fig9",
        title="Parallel tree traversal speedup (4 cache banks)",
        headers=["scheme"] + [f"{w}w" for w in worker_counts],
        rows=rows,
        paper_says=(
            "random and group scale near-linearly to 8 workers on 4 banks; "
            "group performs best; left/right performs poorly"
        ),
        shape_checks={
            "group near-linear to 8 workers (2 per bank)": group8 >= 5.5,
            "random near-linear to 8 workers": random8 >= 5.5,
            "group best at 8 workers": group8 >= max(random8, leftright8) - 0.1,
            "left/right does not beat group": leftright8 <= group8 + 0.1,
            "diminishing returns past 2 workers/bank": speedups[("group", max_w)]
            < group8 * (max_w / 8.0) * 0.85,
        },
    )
