"""Cross-platform experiments: Tables 2-3 and 6, Figure 17, Section 7.1."""

from __future__ import annotations

from repro.analysis.platforms import CPU_MODEL, GPU_MODEL
from repro.analysis.resources import (
    LINEAR_RESOURCE_MODEL,
    QUICKNN_RESOURCE_MODEL,
    quicknn_cache_bytes,
)
from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.result import ExperimentResult

#: Post-synthesis anchors from the paper's Tables 2 and 3 (64 FUs).
PAPER_TABLE2_LINEAR = {"luts": 45_458, "registers": 40_024, "dsps": 512, "power": 4.44}
PAPER_TABLE3_QUICKNN = {"luts": 90_754, "registers": 79_002, "dsps": 512, "power": 4.73}

#: Prior-accelerator anchors of Section 7.1, back-computed from the
#: paper's own comparison ratios and its Table 5 operating points:
#: Heinzle et al. on 5k-point fluid data (QuickNN reported 75x faster),
#: and FastTree's 65k-point tree construction (QuickNN reported 13%
#: faster doing construction *plus* search).
PRIOR_HEINZLE_5K_SECONDS = 0.125
PRIOR_FASTTREE_65K_SECONDS = 0.0177


def _quicknn_latency(n_points: int, n_fus: int, k: int, seed: int = 0) -> float:
    ref, qry = lidar_frame_pair(n_points, seed=seed)
    _, report = QuickNN(QuickNNConfig(n_fus=n_fus)).run(ref, qry, k)
    return report.total_cycles * 1e-8  # seconds at 100 MHz


def tables23_resources(n_fus: int = 64) -> ExperimentResult:
    """Tables 2-3: FPGA resource model vs the paper's synthesis results."""
    linear = LINEAR_RESOURCE_MODEL.estimate(n_fus)
    quick = QUICKNN_RESOURCE_MODEL.estimate(
        n_fus, cache_bytes=quicknn_cache_bytes(n_fus)
    )
    rows = [
        ["linear LUTs", linear.luts, PAPER_TABLE2_LINEAR["luts"]],
        ["linear registers", linear.registers, PAPER_TABLE2_LINEAR["registers"]],
        ["linear DSPs", linear.dsps, PAPER_TABLE2_LINEAR["dsps"]],
        ["linear power (W)", linear.power_watts, PAPER_TABLE2_LINEAR["power"]],
        ["quicknn LUTs", quick.luts, PAPER_TABLE3_QUICKNN["luts"]],
        ["quicknn registers", quick.registers, PAPER_TABLE3_QUICKNN["registers"]],
        ["quicknn DSPs", quick.dsps, PAPER_TABLE3_QUICKNN["dsps"]],
        ["quicknn power (W)", quick.power_watts, PAPER_TABLE3_QUICKNN["power"]],
    ]

    def close(model, paper, tol=0.10):
        return abs(model - paper) <= tol * paper

    return ExperimentResult(
        exp_id="tables23",
        title="FPGA resource utilization at 64 FUs (model vs paper)",
        headers=["quantity", "model", "paper"],
        rows=rows,
        paper_says="Table 2 / Table 3 post-synthesis utilization and XPE power",
        shape_checks={
            "linear LUT/FF within 10%": close(linear.luts, PAPER_TABLE2_LINEAR["luts"])
            and close(linear.registers, PAPER_TABLE2_LINEAR["registers"]),
            "quicknn LUT/FF within 10%": close(quick.luts, PAPER_TABLE3_QUICKNN["luts"])
            and close(quick.registers, PAPER_TABLE3_QUICKNN["registers"]),
            "DSPs exact (8 per FU)": linear.dsps == quick.dsps == 8 * n_fus,
            "power within 10%": close(linear.power_watts, PAPER_TABLE2_LINEAR["power"])
            and close(quick.power_watts, PAPER_TABLE3_QUICKNN["power"]),
            "quicknn costs more logic than linear": quick.area > linear.area,
        },
    )


def fig17_platforms(
    frame_sizes: tuple[int, ...] = (5_000, 10_000, 20_000, 30_000),
    k: int = 8,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 17: latency of CPU/GPU k-d search vs the FPGA designs."""
    rows = []
    lat: dict[tuple[str, int], float] = {}
    for n in frame_sizes:
        cpu = CPU_MODEL.latency_seconds(n, k)
        gpu = GPU_MODEL.latency_seconds(n, k)
        linear = LinearArch(LinearArchConfig(n_fus=64)).simulate(n, n, k).total_cycles * 1e-8
        q16 = _quicknn_latency(n, 16, k, seed)
        q128 = _quicknn_latency(n, 128, k, seed)
        for name, value in [("cpu", cpu), ("gpu", gpu), ("linear64", linear),
                            ("q16", q16), ("q128", q128)]:
            lat[(name, n)] = value
        rows.append([n, cpu * 1e3, gpu * 1e3, linear * 1e3, q16 * 1e3, q128 * 1e3])

    big, small = max(frame_sizes), min(frame_sizes)
    linear_growth = lat[("linear64", big)] / lat[("linear64", small)]
    quick_growth = lat[("q128", big)] / lat[("q128", small)]
    return ExperimentResult(
        exp_id="fig17",
        title="Latency (ms) across platforms vs frame size",
        headers=["points", "CPU k-d", "GPU k-d", "FPGA linear 64FU",
                 "QuickNN 16FU", "QuickNN 128FU"],
        rows=rows,
        paper_says=(
            "FPGA QuickNN scales like the software k-d searches but runs at "
            "least an order of magnitude faster; the linear FPGA design "
            "scales quadratically and falls behind at large frames"
        ),
        shape_checks={
            "QuickNN 128 fastest at every size": all(
                lat[("q128", n)] <= min(lat[("cpu", n)], lat[("gpu", n)],
                                        lat[("linear64", n)])
                for n in frame_sizes
            ),
            "QuickNN >= 10x faster than CPU at 30k": lat[("cpu", big)]
            >= 10 * lat[("q128", big)],
            "linear grows quadratically, QuickNN linearly": linear_growth
            > 3.0 * quick_growth,
            "GPU between CPU and QuickNN at 30k": lat[("q128", big)]
            < lat[("gpu", big)] < lat[("cpu", big)],
        },
    )


def table6_speedup(n_points: int = 30_000, k: int = 8, *, seed: int = 0) -> ExperimentResult:
    """Table 6: speedup and perf/W over the CPU k-d search (30k, k=8)."""
    cpu_fps = CPU_MODEL.fps(n_points, k)
    gpu_fps = GPU_MODEL.fps(n_points, k)
    q16_fps = 1.0 / _quicknn_latency(n_points, 16, k, seed)
    q128_fps = 1.0 / _quicknn_latency(n_points, 128, k, seed)

    cpu_ppw = cpu_fps / CPU_MODEL.power_watts
    gpu_ppw = gpu_fps / GPU_MODEL.power_watts
    q16_w = QUICKNN_RESOURCE_MODEL.estimate(16, cache_bytes=quicknn_cache_bytes(16)).power_watts
    q128_w = QUICKNN_RESOURCE_MODEL.estimate(128, cache_bytes=quicknn_cache_bytes(128)).power_watts
    q16_ppw = q16_fps / q16_w
    q128_ppw = q128_fps / q128_w

    rows = [
        ["CPU k-d tree", 1.0, 1.0],
        ["GPU k-d tree", gpu_fps / cpu_fps, gpu_ppw / cpu_ppw],
        ["QuickNN 16 FUs", q16_fps / cpu_fps, q16_ppw / cpu_ppw],
        ["QuickNN 128 FUs", q128_fps / cpu_fps, q128_ppw / cpu_ppw],
    ]
    speed128 = q128_fps / cpu_fps
    ppw128 = q128_ppw / cpu_ppw
    return ExperimentResult(
        exp_id="table6",
        title="Speedup and perf/W normalized to CPU k-d (30k points, k=8)",
        headers=["design", "speedup", "perf/watt"],
        rows=rows,
        paper_says="GPU 2.62x/3.55x; QuickNN-16 6.82x/152x; QuickNN-128 19.0x/334x",
        shape_checks={
            "GPU ~2-4x faster than CPU": 2.0 <= gpu_fps / cpu_fps <= 4.0,
            "QuickNN-128 speedup in the ~15-30x band": 12.0 <= speed128 <= 30.0,
            "QuickNN-16 slower than QuickNN-128": q16_fps < q128_fps,
            "QuickNN-128 beats GPU by ~5-10x": 4.0 <= q128_fps / gpu_fps <= 12.0,
            "two-orders-of-magnitude perf/W over CPU": ppw128 >= 100.0,
            "perf/W over GPU ~100x": q128_ppw / gpu_ppw >= 50.0,
        },
    )


def sec71_prior_accelerators(k: int = 8, *, seed: int = 0) -> ExperimentResult:
    """Section 7.1: scaling QuickNN to prior accelerators' benchmarks."""
    q5k = _quicknn_latency(5_000, 128, k, seed)
    q65k = _quicknn_latency(65_000, 128, k, seed)
    rows = [
        ["Heinzle 2008 (5k pts, full frame)", PRIOR_HEINZLE_5K_SECONDS * 1e3,
         q5k * 1e3, PRIOR_HEINZLE_5K_SECONDS / q5k],
        ["FastTree (65k pts, build only)", PRIOR_FASTTREE_65K_SECONDS * 1e3,
         q65k * 1e3, PRIOR_FASTTREE_65K_SECONDS / q65k],
    ]
    return ExperimentResult(
        exp_id="sec71",
        title="QuickNN (128 FUs) vs prior accelerators' operating points",
        headers=["prior work", "prior ms", "quicknn ms", "speedup"],
        rows=rows,
        paper_says=(
            "75x over Heinzle et al. at 5k points; 13% faster than FastTree's "
            "65k-point construction while also doing the search"
        ),
        shape_checks={
            "order-of-magnitude faster than Heinzle": PRIOR_HEINZLE_5K_SECONDS / q5k >= 20.0,
            "at least matches FastTree while adding search": q65k
            <= PRIOR_FASTTREE_65K_SECONDS * 1.3,
        },
    )
