"""Blocked out-of-core experiment: build + serve a million-point map.

Beyond the paper's frame-scale evaluation: FractalCloud-style spatial
blocking applied to an accumulated city-block map.  The experiment
streams a map to disk, builds the blocked index from the ``.npy`` path
(so the cloud is never required in RAM), reopens it under a small
resident-block budget, and serves exact queries while watching process
memory — the point being that answers stay bit-identical to a
monolithic tree while the serving working set is the block budget, not
the cloud.
"""

from __future__ import annotations

import os
import resource
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.datasets import city_block_map
from repro.harness.result import ExperimentResult
from repro.kdtree import (
    BlockedBuildConfig,
    BlockedIndex,
    build_blocked,
    build_flat,
    knn_exact_batched,
)


def _rss_bytes() -> int:
    """Current (not peak) resident set size of this process."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def blocked_build(
    n_points: int = 1_000_000,
    target_block_points: int = 125_000,
    workers: int = 2,
    n_queries: int = 2_000,
    k: int = 8,
    max_resident_blocks: int = 2,
    *,
    partitioner: str = "grid",
    seed: int = 0,
) -> ExperimentResult:
    """Out-of-core blocked build + budget-bounded exact serving.

    The shape checks are the blocked layer's contract: exactness
    against the monolithic engine (distances bit-identical, index rows
    interchangeable only among duplicate coordinates), the resident
    cache honoring its budget under eviction pressure, and the serving
    phase's RSS growth staying within the block-budget working set
    rather than the whole map.  The parallel-vs-inline comparison is
    reported honestly: with one usable core, process fan-out pays spawn
    overhead for no speedup, and the check degrades to recording that.
    """
    cores = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="qknn-blocked-exp-") as tmp:
        tmp_path = Path(tmp)
        t0 = time.perf_counter()
        source = city_block_map(n_points, seed=seed, out=tmp_path / "map.npy")
        gen_s = time.perf_counter() - t0
        rng = np.random.default_rng(seed + 1)
        queries = (
            np.asarray(source[rng.integers(0, n_points, size=n_queries)])
            + rng.normal(scale=0.05, size=(n_queries, 3))
        )

        config = BlockedBuildConfig(
            target_block_points=target_block_points,
            partitioner=partitioner,
            workers=1,
            chunk_points=max(10_000, n_points // 4),
        )
        t0 = time.perf_counter()
        built = build_blocked(
            source, config, block_dir=tmp_path / "blocks"
        )
        inline_s = time.perf_counter() - t0
        n_blocks = built.n_blocks
        staging_cleaned = not (tmp_path / "blocks" / "staging").exists()

        from dataclasses import replace

        parallel_s = None
        if workers > 1:
            t0 = time.perf_counter()
            build_blocked(
                source, replace(config, workers=workers),
                block_dir=tmp_path / "blocks-par",
            )
            parallel_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        flat, _ = build_flat(np.asarray(source, dtype=np.float64))
        mono_build_s = time.perf_counter() - t0
        truth, _ = knn_exact_batched(flat, queries, k)
        del flat

        # Serve from a cold reopen under the block budget; RSS growth
        # during this phase is the serving working set.
        index = BlockedIndex(
            tmp_path / "blocks", max_resident_blocks=max_resident_blocks
        )
        rss_before = _rss_bytes()
        t0 = time.perf_counter()
        result = index.query(queries, k)
        query_s = time.perf_counter() - t0
        rss_growth = max(0, _rss_bytes() - rss_before)
        stats = index.stats()

        source_xyz = np.asarray(source)
        map_bytes = source_xyz.nbytes

    distances_identical = bool(
        np.array_equal(result.distances, truth.distances)
    )
    differs = result.indices != truth.indices
    ties_ok = bool(
        not differs.any()
        or np.array_equal(
            source_xyz[result.indices[differs]],
            source_xyz[truth.indices[differs]],
        )
    )

    # The serving working set: the budgeted blocks (mapped structure +
    # derived arrays) plus merge scratch — generously doubled, but far
    # below the map itself for any real block count.
    per_block = stats["resident_bytes"] / max(stats["resident_blocks"], 1)
    budget_bytes = int((max_resident_blocks + 1) * per_block)
    working_set_ok = rss_growth <= max(2 * budget_bytes, 64 << 20)

    one_core = cores <= 1
    if parallel_s is None:
        parallel_note = "parallel arm skipped (workers=1)"
        parallel_ok = True
    elif one_core:
        parallel_note = (
            f"1 usable core: {workers}-worker build pays spawn overhead "
            f"({parallel_s:.2f}s vs {inline_s:.2f}s inline) — recorded, "
            "not asserted"
        )
        parallel_ok = True
    else:
        parallel_note = (
            f"{cores} cores: {workers}-worker build {parallel_s:.2f}s "
            f"vs monolithic {mono_build_s:.2f}s"
        )
        parallel_ok = parallel_s < mono_build_s

    rows = [
        ["map points", n_points],
        ["map bytes (MB)", round(map_bytes / 2**20, 1)],
        ["map generation (s)", round(gen_s, 2)],
        ["blocks", n_blocks],
        ["min block points", stats["min_block_points"]],
        ["max block points", stats["max_block_points"]],
        ["inline blocked build (s)", round(inline_s, 2)],
        ["parallel blocked build (s)",
         round(parallel_s, 2) if parallel_s is not None else "-"],
        ["monolithic build (s)", round(mono_build_s, 2)],
        ["resident budget (blocks)", max_resident_blocks],
        ["block loads", stats["block_loads"]],
        ["block evictions", stats["block_evictions"]],
        ["block visits", stats["block_visits"]],
        ["resident bytes (MB)", round(stats["resident_bytes"] / 2**20, 1)],
        ["serving RSS growth (MB)", round(rss_growth / 2**20, 1)],
        ["peak RSS (MB)", round(_peak_rss_bytes() / 2**20, 1)],
        [f"exact queries ({n_queries} x k={k}) (s)", round(query_s, 2)],
    ]
    return ExperimentResult(
        exp_id="blocked-build",
        title="Blocked out-of-core build + query on a city-block map",
        headers=["metric", "value"],
        rows=rows,
        paper_says=(
            "QuickNN evaluates per-frame trees; FractalCloud (PAPERS.md) "
            "argues point clouds should be spatially partitioned so each "
            "block's tree fits fast local memory — applied here at map "
            "scale in software"
        ),
        notes=parallel_note,
        shape_checks={
            "distances bit-identical to monolithic": distances_identical,
            "index ties only among duplicate coordinates": ties_ok,
            "resident blocks within budget": (
                stats["resident_blocks"] <= max_resident_blocks
            ),
            "budget pressure forced evictions": (
                n_blocks <= max_resident_blocks
                or stats["block_evictions"] > 0
            ),
            "staging buffers cleaned up": staging_cleaned,
            "serving RSS growth within block-budget working set":
                working_set_ok,
            "parallel build beats monolithic when cores allow": parallel_ok,
        },
    )
