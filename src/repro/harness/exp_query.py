"""Query-modality experiments: batched radius search and fused FPS.

Two regenerators beyond the paper's kNN-only evaluation, exercising
the non-kNN modalities behind :class:`~repro.index.protocol.
NeighborIndex`:

* ``radius-query`` — the vectorized batched radius kernel against the
  per-query reference loop, with bit-identity asserted across the
  monolithic, sharded-serve, and blocked paths (same pairs, same
  distances, same canonical row order, same ``max_neighbors`` cap);
* ``fps-build`` — build-fused farthest point sampling (FuseFPS)
  against the naive O(n·m) update loop, identical index sequence
  asserted, with the tree build the fused path piggybacks on timed
  both inside and out.

Speed ratios are recorded with the repo's 1-core honesty rule: on a
single usable core the vectorized win is NumPy-dispatch economy, not
parallelism, and the checks assert only what one core can promise.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.datasets import lidar_frame_pair
from repro.harness.result import ExperimentResult
from repro.kdtree import build_flat
from repro.kdtree.blocked import BlockedBuildConfig, build_blocked
from repro.query import (
    radius_batched,
    radius_reference,
    sample_fps,
    sample_fps_reference,
)


def _same_ragged(a, b) -> bool:
    return (
        np.array_equal(a.offsets, b.offsets)
        and np.array_equal(a.indices, b.indices)
        and np.array_equal(a.distances, b.distances)
    )


def radius_query(
    n_points: int = 30_000,
    n_queries: int = 2_000,
    radius: float = 1.0,
    max_neighbors: int = 32,
    n_shards: int = 3,
    *,
    backend: str = "thread",
    seed: int = 0,
) -> ExperimentResult:
    """Batched radius search vs the reference loop, all serving paths.

    One successive-frame workload, four answers that must agree bit
    for bit: the vectorized batched kernel, the per-query reference
    loop, the sharded server (``backend`` selects thread or process
    execution), and the blocked out-of-core router.  The speedup row
    is the batched kernel against the reference loop on the same tree.
    """
    cores = os.cpu_count() or 1
    ref_cloud, qry_cloud = lidar_frame_pair(n_points, seed=seed)
    ref = ref_cloud.xyz
    queries = qry_cloud.xyz[:n_queries]

    t0 = time.perf_counter()
    flat, _ = build_flat(ref)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = radius_batched(
        flat, queries, radius, max_neighbors=max_neighbors
    )
    batched_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    reference = radius_reference(
        flat, queries, radius, max_neighbors=max_neighbors
    )
    reference_s = time.perf_counter() - t0

    # Sharded serving path, exercised under the requested execution
    # backend; the merged capped rows must equal the monolithic answer.
    from repro.serve import ExecutionConfig, KnnServer, ServeConfig

    config = ServeConfig(
        n_shards=n_shards,
        max_queue=max(4 * n_queries * max_neighbors, 1024),
        max_batch_size=max(n_queries * max_neighbors, 256),
        execution=ExecutionConfig(backend=backend),
    )
    with KnnServer(ref, config) as server:
        t0 = time.perf_counter()
        response = server.query_radius(
            queries, radius, max_neighbors=max_neighbors, timeout=300
        )
        serve_s = time.perf_counter() - t0
    served = response.as_ragged()

    # Blocked out-of-core path over the same cloud.
    with tempfile.TemporaryDirectory(prefix="qknn-radius-exp-") as tmp:
        blocked_index = build_blocked(
            ref,
            BlockedBuildConfig(
                target_block_points=max(2_000, n_points // 8)
            ),
            block_dir=tmp,
        )
        t0 = time.perf_counter()
        blocked = blocked_index.query_radius(
            queries, radius, max_neighbors=max_neighbors
        )
        blocked_s = time.perf_counter() - t0

    speedup = reference_s / batched_s if batched_s > 0 else float("inf")
    one_core = cores <= 1
    notes = (
        f"{cores} usable core(s); the batched-vs-reference ratio is "
        "NumPy-dispatch economy on one core, not parallelism"
        if one_core
        else f"{cores} usable cores"
    )

    counts = batched.counts()
    rows = [
        ["reference points", n_points],
        ["queries", n_queries],
        ["radius (m)", radius],
        ["max_neighbors cap", max_neighbors],
        ["pairs returned", int(batched.n_pairs)],
        ["mean row occupancy", round(float(counts.mean()), 2)],
        ["capped rows", int((counts == max_neighbors).sum())],
        ["tree build (s)", round(build_s, 3)],
        ["batched radius (s)", round(batched_s, 3)],
        ["reference loop (s)", round(reference_s, 3)],
        ["batched speedup (x)", round(speedup, 1)],
        [f"served radius, {n_shards} shards/{backend} (s)",
         round(serve_s, 3)],
        ["blocked radius (s)", round(blocked_s, 3)],
    ]
    return ExperimentResult(
        exp_id="radius-query",
        title="Vectorized batched radius search vs the reference loop",
        headers=["metric", "value"],
        rows=rows,
        paper_says=(
            "QuickNN batches many queries against one tree to keep its "
            "traversal units busy; the same batching argument applied "
            "to the radius modality perception stacks actually run "
            "(clustering, normal estimation)"
        ),
        notes=notes,
        shape_checks={
            "batched bit-identical to reference loop": _same_ragged(
                batched, reference
            ),
            "sharded serve bit-identical to monolithic": _same_ragged(
                served, batched
            ),
            "blocked router bit-identical to monolithic": _same_ragged(
                blocked, batched
            ),
            "batched faster than reference loop": batched_s < reference_s,
            "cap respected on every row": bool(
                (counts <= max_neighbors).all()
            ),
        },
    )


def fps_build(
    n_points: int = 30_000,
    m: int = 1_024,
    *,
    seed: int = 0,
) -> ExperimentResult:
    """Build-fused FPS vs the naive O(n·m) loop, identical sequences.

    Times three arms: the naive reference, the fused path on a tree
    built for it (build + sampling — the honest total for a pipeline
    that has no tree yet), and the fused sampling alone on a prebuilt
    tree (the intended mode: the pipeline builds the tree anyway, so
    sampling rides for the loop cost).
    """
    cores = os.cpu_count() or 1
    frame, _ = lidar_frame_pair(n_points, seed=seed)
    xyz = frame.xyz

    t0 = time.perf_counter()
    naive = sample_fps_reference(xyz, m)
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fused_total = sample_fps(xyz, m)
    fused_total_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    flat, _ = build_flat(xyz)
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused_only = sample_fps(xyz, m, flat=flat)
    fused_only_s = time.perf_counter() - t0

    speedup_total = naive_s / fused_total_s if fused_total_s > 0 else float("inf")
    speedup_only = naive_s / fused_only_s if fused_only_s > 0 else float("inf")
    one_core = cores <= 1
    notes = (
        f"{cores} usable core(s); the fused-vs-naive ratio is bucket "
        "pruning plus NumPy-dispatch economy, not parallelism"
        if one_core
        else f"{cores} usable cores"
    )

    rows = [
        ["points", n_points],
        ["samples (m)", m],
        ["naive O(n*m) (s)", round(naive_s, 3)],
        ["fused incl. tree build (s)", round(fused_total_s, 3)],
        ["tree build alone (s)", round(build_s, 3)],
        ["fused sampling alone (s)", round(fused_only_s, 3)],
        ["fused speedup incl. build (x)", round(speedup_total, 1)],
        ["fused speedup on prebuilt tree (x)", round(speedup_only, 1)],
    ]
    return ExperimentResult(
        exp_id="fps-build",
        title="Build-fused farthest point sampling (FuseFPS) vs naive",
        headers=["metric", "value"],
        rows=rows,
        paper_says=(
            "FuseFPS (PAPERS.md) fuses FPS into the k-d tree build the "
            "pipeline runs anyway, pruning distance updates with "
            "per-node bounds while keeping the selected sequence exact"
        ),
        notes=notes,
        shape_checks={
            "fused sequence identical to naive": bool(
                np.array_equal(fused_total, naive)
            ),
            "prebuilt-tree path identical to naive": bool(
                np.array_equal(fused_only, naive)
            ),
            "fused (incl. build) faster than naive": fused_total_s < naive_s,
        },
    )
