"""Point sharding and cross-shard top-k merging.

A shard plan partitions the reference cloud's point ids into disjoint
subsets; each shard builds its own k-d tree over its subset and every
query fans out to all shards.  Because the engine reports exact
float64 distances computed by the same kernel regardless of which
shard holds a point, merging the per-shard top-k lists recovers the
global top-k *distances* bit-identically for any shard count: a shard
can only cut a candidate at its local k boundary when it keeps another
candidate at exactly the same distance, so the merged distance rows
always equal the single-index exact answer.  :func:`merge_topk` orders
each row canonically — ascending distance, ties broken by ascending
point id — which also pins the *indices* whenever a row has no
exact-duplicate distances.  The one remaining freedom is which of
several exactly-tied candidates straddling a k boundary gets reported
(they are interchangeable by construction); everything else is
deterministic and shard-count invariant.

Two strategies:

* ``round-robin`` — point ``i`` goes to shard ``i % S``.  Perfectly
  balanced, and each shard sees a spatially representative thinned
  cloud (the QuickNN paper's parallel traversal units share one tree;
  this is the share-nothing software analogue).
* ``spatial`` — recursive median cuts along the widest extent, the
  FractalCloud-style partitioning: shards are compact cells, so a
  shard's k-th distance is a tight bound and its top-k list rarely
  contributes more than the cell boundary region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kdtree.engine import FlatKdTree, knn_approx_batched, knn_exact_batched
from repro.kdtree.search import PAD_INDEX
from repro.kdtree.snapshot import Snapshot
from repro.registry import Registry

#: Partitioning strategies for :func:`make_plan` (what
#: ``ServeConfig.sharding`` validates).  Each entry is called as
#: ``strategy(xyz, n_shards)`` and returns the per-shard id tuple.
STRATEGIES: Registry = Registry("sharding strategy")


@dataclass(frozen=True)
class ShardState:
    """One shard's immutable snapshot: its tree and the id translation.

    This is the unit both execution backends serve from — thread
    workers hold it directly, process workers reassemble it from a
    shared-memory segment (:meth:`from_snapshot` over zero-copy views).
    :meth:`search` is the single compute path, so the two backends are
    bit-identical by construction.
    """

    tree: FlatKdTree
    global_ids: np.ndarray

    def search(
        self, q: np.ndarray, k: int, budget: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Local top-k for a query block, translated to global ids.

        ``budget`` is the serving ladder's engine budget: ``None`` runs
        the unbounded exact search, ``0`` the single-bucket approximate
        answer, anything else a ``max_visits``-bounded exact search.
        """
        if budget is None:
            result, _ = knn_exact_batched(self.tree, q, k)
        elif budget == 0:
            result = knn_approx_batched(self.tree, q, k)
        else:
            result, _ = knn_exact_batched(self.tree, q, k, max_visits=budget)
        local = result.indices
        translated = self.global_ids[local]
        translated[local == PAD_INDEX] = PAD_INDEX
        return translated, result.distances

    def search_radius(
        self, q: np.ndarray, radius: float, k: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Local radius rows as a CSR triplet with *global* ids.

        Returns ``(indices, distances, offsets)`` in canonical row
        order, each row capped at its nearest ``k``.  The per-shard cap
        is lossless under the global merge: shard-local ids ascend with
        global ids (both split strategies keep their id arrays sorted),
        so a shard's top-``k``-by-(distance, id) is a superset of the
        global answer's members living on this shard.  Radius requests
        never degrade, so there is no budget parameter.
        """
        from repro.query.radius import radius_batched

        result = radius_batched(self.tree, q, radius, max_neighbors=k)
        return (
            self.global_ids[result.indices],
            result.distances,
            result.offsets,
        )

    def snapshot(self) -> Snapshot:
        """Portable form (disk file or shared-memory payload)."""
        return Snapshot.from_flat(
            self.tree.flat(), extra={"global_ids": self.global_ids}
        )

    @classmethod
    def from_snapshot(cls, snap: Snapshot) -> "ShardState":
        if "global_ids" not in snap.extras:
            raise ValueError("snapshot carries no global_ids side array")
        return cls(
            tree=snap.to_flat(),
            global_ids=np.asarray(snap.extras["global_ids"], dtype=np.int64),
        )


@dataclass(frozen=True)
class ShardPlan:
    """Disjoint global point-id sets, one per shard."""

    strategy: str
    global_ids: tuple[np.ndarray, ...]

    @property
    def n_shards(self) -> int:
        return len(self.global_ids)

    @property
    def n_points(self) -> int:
        return sum(ids.size for ids in self.global_ids)

    def describe(self) -> dict:
        sizes = [int(ids.size) for ids in self.global_ids]
        return {
            "strategy": self.strategy,
            "n_shards": self.n_shards,
            "n_points": self.n_points,
            "min_shard_points": min(sizes),
            "max_shard_points": max(sizes),
        }


def make_plan(xyz: np.ndarray, n_shards: int, strategy: str) -> ShardPlan:
    """Partition ``(N, 3)`` points into ``n_shards`` disjoint id sets."""
    n = xyz.shape[0]
    if n_shards < 1:
        raise ValueError("n_shards must be positive")
    if n < n_shards:
        raise ValueError(f"cannot split {n} points into {n_shards} shards")
    split = STRATEGIES.resolve(strategy)
    return ShardPlan(strategy=strategy, global_ids=split(xyz, n_shards))


@STRATEGIES.register("round-robin")
def _round_robin_split(xyz: np.ndarray, n_shards: int) -> tuple[np.ndarray, ...]:
    """Point ``i`` goes to shard ``i % S`` — balanced by construction."""
    n = xyz.shape[0]
    return tuple(np.arange(s, n, n_shards, dtype=np.int64) for s in range(n_shards))


@STRATEGIES.register("spatial")
def _spatial_split(xyz: np.ndarray, n_shards: int) -> tuple[np.ndarray, ...]:
    """Recursive median cuts: split the largest cell at its widest axis."""
    cells: list[np.ndarray] = [np.arange(xyz.shape[0], dtype=np.int64)]
    while len(cells) < n_shards:
        largest = max(range(len(cells)), key=lambda c: cells[c].size)
        ids = cells.pop(largest)
        coords = xyz[ids]
        axis = int(np.argmax(coords.max(axis=0) - coords.min(axis=0)))
        order = np.argsort(coords[:, axis], kind="stable")
        half = ids.size // 2
        cells.append(np.sort(ids[order[:half]]))
        cells.append(np.sort(ids[order[half:]]))
    return tuple(cells)


def merge_topk(
    indices_parts: list[np.ndarray],
    distances_parts: list[np.ndarray],
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise k-smallest merge of per-shard top-k lists.

    Inputs are ``(M, k_s)`` global point indices (``-1`` padding) and
    matching float64 distances (``inf`` padding), one pair per shard.
    Rows of the output are in canonical order — ascending distance,
    ties broken by ascending point id, padding last — implemented as
    two stable argsorts (secondary key first).  Shards partition the
    points, so no id appears twice and the merged set is the global
    top-k whenever each shard list is its local top-k.
    """
    cat_idx = np.concatenate(indices_parts, axis=1)
    cat_dst = np.concatenate(distances_parts, axis=1)
    o1 = np.argsort(cat_idx, axis=1, kind="stable")
    o2 = np.argsort(np.take_along_axis(cat_dst, o1, axis=1), axis=1, kind="stable")
    order = np.take_along_axis(o1, o2, axis=1)[:, :k]
    idx = np.take_along_axis(cat_idx, order, axis=1)
    dst = np.take_along_axis(cat_dst, order, axis=1)
    idx[np.isinf(dst)] = PAD_INDEX
    return np.ascontiguousarray(idx), np.ascontiguousarray(dst)


def merge_radius(
    parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    n_rows: int,
    k: int | None,
):
    """Merge per-shard radius CSR triplets into one global result.

    Each part is a ``(indices, distances, offsets)`` triplet over the
    same ``n_rows`` queries with global ids.  Shards partition the
    points, so the merge is pure concatenation funneled through the
    one canonical CSR sort (ascending distance, ties by ascending id)
    with the ``k`` cap applied *after* — per-shard caps are supersets
    (see :meth:`ShardState.search_radius`), so the merged rows are
    bit-identical to an unsharded :func:`repro.query.radius.
    radius_batched` for any shard count.
    """
    from repro.query.result import build_ragged

    qids, idxs, dsts = [], [], []
    for indices, distances, offsets in parts:
        counts = np.diff(np.asarray(offsets, dtype=np.int64))
        qids.append(np.repeat(np.arange(n_rows, dtype=np.int64), counts))
        idxs.append(np.asarray(indices, dtype=np.int64))
        dsts.append(np.asarray(distances, dtype=np.float64))
    qid = np.concatenate(qids) if qids else np.empty(0, dtype=np.int64)
    idx = np.concatenate(idxs) if idxs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.float64)
    return build_ragged(qid, idx, dst, n_rows, max_neighbors=k)
