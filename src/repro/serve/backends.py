"""Execution backends: where shard work runs, behind one registry.

The serving coordinator (:class:`~repro.serve.server.KnnServer`) owns
admission, batch formation, the degradation ladder, failure policy,
and the canonical top-k merge.  What it delegates is *execution*: given
a dispatched batch job and a shard slot, compute that shard's local
top-k.  An :class:`ExecutionBackend` is that delegation boundary, and
the registry (:func:`register_backend` / :func:`make_backend`) mirrors
the repo's ``engine=`` / ``builder=`` knob pattern — string-keyed,
validated at config time, every entry bit-identical in its answers.

Two backends ship:

* ``thread`` — shard replicas are daemon threads; a job carries direct
  references to its shard trees.  One process, zero IPC, but
  Python-level work shares one GIL.
* ``process`` — shard replicas are worker processes
  (:mod:`repro.serve.worker`); shard trees live in shared-memory
  segments (:mod:`repro.serve.shm`) created per *generation*, so a
  warm handoff publishes new segments, atomically swaps the serving
  generation, and unlinks the old segments only when the last in-flight
  job that references them finishes (deferred unlink — no worker can
  observe a vanished segment for work it was legitimately given).

Both backends report completion through the same two coordinator
callbacks (``_shard_completed`` / ``_shard_failed``), so hedging,
retries, timeouts, and merge behave identically under either.
"""

from __future__ import annotations

import abc
import itertools
import queue
import secrets
import threading
from typing import TYPE_CHECKING, Callable

from repro.obs import get_registry
from repro.registry import Registry
from repro.serve import shm as shm_mod
from repro.serve.errors import WorkerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.server import KnnServer, _BatchJob
    from repro.serve.sharding import ShardState

BACKENDS: Registry[Callable[..., "ExecutionBackend"]] = Registry(
    "execution backend"
)


def register_backend(name: str):
    """Class decorator adding an execution backend to the registry."""

    def _register(cls):
        BACKENDS.add(name, cls)
        cls.name = name
        return cls

    return _register


def available_backends() -> tuple[str, ...]:
    """Registered backend names (what ``ExecutionConfig`` validates)."""
    return BACKENDS.available()


def make_backend(name: str, server: "KnnServer") -> "ExecutionBackend":
    """Instantiate a registered backend bound to ``server``."""
    factory = BACKENDS.resolve(name)
    return factory(server)


class ExecutionBackend(abc.ABC):
    """Lifecycle and dispatch contract between coordinator and workers.

    Call order: :meth:`start` once (with the generation-0 shard
    states), then any number of :meth:`submit` (initial fan-out,
    hedges, retries — all the same call), :meth:`publish` before each
    generation swap and :meth:`retire` when a generation's last
    in-flight job drains, and :meth:`close` exactly once.  ``submit``
    after ``close`` must be a safe no-op.
    """

    name = "abstract"

    def __init__(self, server: "KnnServer"):
        self._server = server

    @abc.abstractmethod
    def start(self, shards: tuple["ShardState", ...]) -> None:
        """Bring up workers for generation 0."""

    @abc.abstractmethod
    def submit(self, job: "_BatchJob", slot: int) -> None:
        """Enqueue one shard's share of a job (also hedges/retries)."""

    def publish(self, generation: int, shards: tuple["ShardState", ...]) -> None:
        """Make a new generation's shard states reachable by workers."""

    def retire(self, generation: int) -> None:
        """A generation no longer serves and has no in-flight jobs."""

    @abc.abstractmethod
    def describe(self) -> dict:
        """Operational snapshot for ``KnnServer.stats()``."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop workers, release every execution resource.  Idempotent."""


# ----------------------------------------------------------------------
# Thread backend
# ----------------------------------------------------------------------
@register_backend("thread")
class ThreadBackend(ExecutionBackend):
    """Shard replicas as daemon threads (the PR 5 execution model).

    Jobs carry direct references to their shard states, so generations
    need no publish/retire bookkeeping — the garbage collector retires
    a generation when its last job drops the tuple.
    """

    def __init__(self, server: "KnnServer"):
        super().__init__(server)
        self._queues: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        self._closed = False

    def start(self, shards) -> None:
        n_replicas = self._server.config.n_replicas
        self._queues = [queue.SimpleQueue() for _ in shards]
        for slot in range(len(shards)):
            for replica in range(n_replicas):
                t = threading.Thread(
                    target=self._worker_loop,
                    args=(slot,),
                    name=f"serve-shard{slot}-r{replica}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)

    def submit(self, job, slot) -> None:
        if self._closed:
            return
        self._queues[slot].put(job)

    def _worker_loop(self, slot: int) -> None:
        shard_queue = self._queues[slot]
        server = self._server
        while True:
            job = shard_queue.get()
            if job is None:
                return
            with job.lock:
                if job.finished or job.shard_done[slot]:
                    continue  # hedge lost the race, or job already failed
            try:
                with get_registry().phase(
                    "serve.worker.search",
                    args={"job_id": job.job_id,
                          "request_ids": job.request_ids,
                          "shard": slot},
                ):
                    if job.kind == "radius":
                        payload = job.shards[slot].search_radius(
                            job.q, job.radius, job.k
                        )
                    else:
                        payload = job.shards[slot].search(
                            job.q, job.k, job.budget
                        )
            except Exception as exc:
                server._shard_failed(job, slot, exc)
                continue
            server._shard_completed(job, slot, payload)

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "n_worker_threads": len(self._threads),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        n_replicas = self._server.config.n_replicas
        for q in self._queues:
            for _ in range(n_replicas):
                q.put(None)
        timeout = self._server.config.execution.join_timeout_s
        for t in self._threads:
            t.join(timeout=timeout)


# ----------------------------------------------------------------------
# Process backend
# ----------------------------------------------------------------------
@register_backend("process")
class ProcessBackend(ExecutionBackend):
    """Shard replicas as worker processes over shared-memory snapshots.

    Topology: every worker owns a private task queue *and* a private
    result pipe.  Both are deliberate SIGKILL containment: a
    ``multiprocessing.Queue`` reader holds the queue's lock while
    blocked (a killed worker sharing a task queue would wedge its
    siblings), and a shared result queue's *write* lock can equally die
    with whichever worker's feeder thread held it mid-send — after
    which no surviving worker can ever deliver a result.  One writer
    and one reader per pipe means no shared lock exists to poison, and
    the pipe's EOF is the worker's death notice.

    A coordinator-side collector thread per worker drains its pipe and
    tracks the worker's outstanding tasks; on EOF the collector fails
    those tasks over through the coordinator's normal retry path, so
    work a dead worker took with it (or that sat unread in its queue)
    is re-routed to a surviving sibling instead of timing out.  Tasks
    name their generation's segment; workers attach segments lazily and
    cache the attachment, so a generation swap needs no control channel
    — new tasks simply carry the new segment name.  Workers are started
    with the ``spawn`` method (the coordinator runs threads, which
    makes ``fork`` hazardous).

    A dead worker is routed around, not respawned.  With every replica
    of a shard dead, submissions fail as shard errors and the
    coordinator's retry budget turns them into typed request failures.
    """

    def __init__(self, server: "KnnServer"):
        super().__init__(server)
        import multiprocessing as mp

        self._ctx = mp.get_context("spawn")
        self._uid = secrets.token_hex(4)
        #: Per shard slot: [{"id", "slot", "queue", "process", "conn",
        #: "thread", "lock", "outstanding", "dead"}].
        self._slot_workers: list[list[dict]] = []
        self._rr: list = []          # per-slot round-robin counters
        self._processes: list = []
        self._segments: dict[int, list] = {}          # generation -> handles
        self._segment_names: dict[tuple[int, int], str] = {}
        self._segment_lock = threading.Lock()
        self._worker_counters: dict[str, dict] = {}
        self._counter_lock = threading.Lock()
        self._late_results = 0
        self._closed = False

    # -- naming --------------------------------------------------------
    def _segment_name(self, generation: int, slot: int) -> str:
        prefix = self._server.config.execution.shm_prefix
        return f"{prefix}-{self._uid}-g{generation}-s{slot}"

    # -- lifecycle -----------------------------------------------------
    def start(self, shards) -> None:
        from repro.serve.worker import worker_main

        execution = self._server.config.execution
        per_shard = execution.processes_per_shard(self._server.config.n_replicas)
        # The coordinator's observability choice at start is what the
        # workers inherit — spawn'd children see none of our globals.
        obs = get_registry()
        obs_config = {"enabled": obs.enabled, "trace": obs.trace_enabled}
        try:
            self._slot_workers = [[] for _ in shards]
            self._rr = [itertools.count() for _ in shards]
            self.publish(0, shards)
            for slot in range(len(shards)):
                for replica in range(per_shard):
                    worker_id = f"{slot}-{replica}"
                    task_queue = self._ctx.Queue()
                    recv_conn, send_conn = self._ctx.Pipe(duplex=False)
                    p = self._ctx.Process(
                        target=worker_main,
                        args=(worker_id, slot, task_queue, send_conn,
                              obs_config),
                        name=f"serve-shard{slot}-p{replica}",
                        daemon=True,
                    )
                    p.start()
                    # Drop the parent's copy of the write end so the
                    # pipe hits EOF the moment the worker exits.
                    send_conn.close()
                    worker = {
                        "id": worker_id,
                        "slot": slot,
                        "queue": task_queue,
                        "process": p,
                        "conn": recv_conn,
                        "lock": threading.Lock(),
                        "outstanding": {},   # job_id -> _BatchJob
                        "dead": False,
                    }
                    worker["thread"] = threading.Thread(
                        target=self._collect_worker,
                        args=(worker,),
                        name=f"serve-collect-{worker_id}",
                        daemon=True,
                    )
                    worker["thread"].start()
                    self._slot_workers[slot].append(worker)
                    self._processes.append(p)
        except BaseException:
            self.close()
            raise

    def publish(self, generation: int, shards) -> None:
        handles, names = [], {}
        try:
            for slot, shard in enumerate(shards):
                name = self._segment_name(generation, slot)
                handle = shm_mod.create_segment(
                    name, shard.snapshot().to_payload()
                )
                handles.append(handle)
                names[(generation, slot)] = name
        except BaseException:
            for handle in handles:
                shm_mod.unlink_segment(handle)
            raise
        with self._segment_lock:
            self._segments[generation] = handles
            self._segment_names.update(names)

    def retire(self, generation: int) -> None:
        with self._segment_lock:
            handles = self._segments.pop(generation, [])
            for slot in range(len(handles)):
                self._segment_names.pop((generation, slot), None)
        for handle in handles:
            shm_mod.unlink_segment(handle)

    def submit(self, job, slot) -> None:
        if self._closed:
            return
        with self._segment_lock:
            name = self._segment_names.get((job.generation, slot))
        if name is None:
            return  # generation already retired — the job is being torn down
        task = (job.job_id, job.generation, name, job.q, job.k, job.budget,
                job.request_ids, job.kind, job.radius)
        workers = self._slot_workers[slot]
        start = next(self._rr[slot])
        for i in range(len(workers)):
            worker = workers[(start + i) % len(workers)]
            if worker["dead"] or not worker["process"].is_alive():
                continue
            # Register before put: if the worker dies with this task
            # unread (or mid-compute), its collector fails it over.
            with worker["lock"]:
                worker["outstanding"][job.job_id] = job
            try:
                worker["queue"].put(task)
                return
            except (ValueError, OSError):  # pragma: no cover - queue closing
                with worker["lock"]:
                    worker["outstanding"].pop(job.job_id, None)
                continue
        self._server._shard_failed(
            job, slot, WorkerError(f"no live worker process for shard {slot}")
        )

    # -- result collection ---------------------------------------------
    def _collect_worker(self, worker: dict) -> None:
        """Drain one worker's result pipe; fail its tasks over on EOF."""
        server = self._server
        conn = worker["conn"]
        try:
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    return  # worker exited (or was killed) — pipe closed
                except Exception:  # pragma: no cover - truncated stream
                    return  # a kill mid-send leaves nothing to resync to
                kind, worker_id, job_id, slot, payload, counters, metrics = msg
                if counters is not None:
                    with self._counter_lock:
                        self._worker_counters[worker_id] = counters
                    server._ingest(counters, prefix=f"serve.worker.{worker_id}")
                if metrics is not None:
                    # Merge before completing the result it rode in on,
                    # so a resolved future implies merged metrics.
                    server._merge_worker_metrics(worker_id, metrics)
                if kind == "bye":
                    continue  # farewell; EOF follows
                with worker["lock"]:
                    worker["outstanding"].pop(job_id, None)
                job = server._job_for(job_id)
                if job is None:
                    with self._counter_lock:
                        self._late_results += 1
                    server._count("serve.worker.late", 1)
                    continue
                if kind == "result":
                    server._count("serve.worker.results", 1)
                    server._shard_completed(job, slot, payload)
                else:  # "error"
                    server._count("serve.worker.errors", 1)
                    server._shard_failed(job, slot, payload)
        finally:
            worker["dead"] = True
            with worker["lock"]:
                orphans = list(worker["outstanding"].values())
                worker["outstanding"].clear()
            if not self._closed:
                exc = WorkerError(
                    f"worker process {worker['id']} "
                    f"(pid {worker['process'].pid}) died"
                )
                for job in orphans:
                    with job.lock:
                        done = job.finished or job.shard_done[worker["slot"]]
                    if not done:
                        server._shard_failed(job, worker["slot"], exc)

    # -- introspection ---------------------------------------------------
    def describe(self) -> dict:
        with self._segment_lock:
            segments = sorted(self._segment_names.values())
        with self._counter_lock:
            counters = dict(self._worker_counters)
            late = self._late_results
        return {
            "backend": self.name,
            "n_worker_processes": len(self._processes),
            "pids": [p.pid for p in self._processes],
            "alive": sum(p.is_alive() for p in self._processes),
            "segments": segments,
            "late_results": late,
            "worker_counters": counters,
        }

    # -- shutdown --------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        execution = self._server.config.execution
        workers = [w for ws in self._slot_workers for w in ws]
        for worker in workers:
            try:
                worker["queue"].put(None)
            except (ValueError, OSError):  # pragma: no cover - closed queue
                pass
        self._reap(execution.join_timeout_s)
        # Worker exit closed each pipe's write end, so every collector
        # sees EOF; join them, then drop the read ends (closing a conn
        # a straggler thread still reads aborts its recv).
        for worker in workers:
            worker["thread"].join(timeout=execution.unlink_timeout_s)
        for worker in workers:
            try:
                worker["conn"].close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        with self._segment_lock:
            generations = list(self._segments)
        for generation in generations:
            self.retire(generation)
        for worker in workers:
            try:
                worker["queue"].cancel_join_thread()
                worker["queue"].close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def _reap(self, join_timeout_s: float) -> None:
        """Join every worker; escalate terminate -> kill on stragglers."""
        deadline = join_timeout_s
        for p in self._processes:
            p.join(timeout=deadline)
        for p in self._processes:
            if p.is_alive():
                p.terminate()
        for p in self._processes:
            if p.is_alive():
                p.join(timeout=1.0)
        for p in self._processes:
            if p.is_alive():  # pragma: no cover - terminate() sufficed so far
                p.kill()
                p.join(timeout=1.0)
