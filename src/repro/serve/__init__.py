"""Concurrent kNN serving over the batched engine.

The QuickNN hardware earns its throughput by keeping many traversal
units busy against one shared tree; this package is the software
serving analogue: coalesce concurrent queries into engine-sized
micro-batches, fan them out over sharded trees, and protect the whole
thing with admission control and a graceful-degradation ladder so
overload produces typed rejections and labelled approximations —
never silent wrong answers.

Quick example::

    from repro.serve import KnnServer, ServeConfig

    with KnnServer(frame_xyz, ServeConfig(n_shards=4)) as server:
        response = server.query(rows, k=8)          # ServeResponse

Hosting many concurrent drives, each with its own evolving index, is
the session layer::

    from repro.serve import SessionConfig, SessionManager

    with SessionManager(SessionConfig(max_resident=16)) as fleet:
        fleet.observe_frame("drive-0", frame0)      # builds once
        fleet.observe_frame("drive-0", frame1)      # incremental update
        response = fleet.query("drive-0", rows, k=8)

See ``docs/serving.md`` for the architecture and the knob catalogue,
and the ``quicknn-serve`` CLI for load generation (``fleet`` replays N
concurrent synthetic drives).  This module's ``__all__`` is the stable
public surface of the package, documented in ``docs/api.md``.
"""

from repro.serve.backends import (
    ExecutionBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.config import (
    DEFAULT_DEGRADE_THRESHOLDS,
    ExecutionConfig,
    ServeConfig,
)
from repro.serve.errors import (
    Overloaded,
    RequestTimeout,
    ServeError,
    ServerClosed,
    WorkerError,
)
from repro.serve.fleet import FleetConfig, FleetReport, run_fleet
from repro.serve.loadgen import (
    LoadgenReport,
    Tally,
    run_closed_loop,
    run_open_loop,
)
from repro.serve.server import KnnServer, RadiusServeResponse, ServeResponse
from repro.serve.sessions import Session, SessionConfig, SessionManager
from repro.serve.sharding import (
    ShardPlan,
    ShardState,
    make_plan,
    merge_radius,
    merge_topk,
)

__all__ = [
    "DEFAULT_DEGRADE_THRESHOLDS",
    "ExecutionBackend",
    "ExecutionConfig",
    "FleetConfig",
    "FleetReport",
    "KnnServer",
    "LoadgenReport",
    "MicroBatcher",
    "Overloaded",
    "RadiusServeResponse",
    "RequestTimeout",
    "ServeConfig",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServerClosed",
    "Session",
    "SessionConfig",
    "SessionManager",
    "ShardPlan",
    "ShardState",
    "Tally",
    "WorkerError",
    "available_backends",
    "make_backend",
    "make_plan",
    "merge_radius",
    "merge_topk",
    "register_backend",
    "run_closed_loop",
    "run_fleet",
    "run_open_loop",
]
