"""Concurrent kNN serving over the batched engine.

The QuickNN hardware earns its throughput by keeping many traversal
units busy against one shared tree; this package is the software
serving analogue: coalesce concurrent queries into engine-sized
micro-batches, fan them out over sharded trees, and protect the whole
thing with admission control and a graceful-degradation ladder so
overload produces typed rejections and labelled approximations —
never silent wrong answers.

Quick example::

    from repro.serve import KnnServer, ServeConfig

    with KnnServer(frame_xyz, ServeConfig(n_shards=4)) as server:
        response = server.query(rows, k=8)          # ServeResponse

See ``docs/serving.md`` for the architecture and the knob catalogue,
and the ``quicknn-serve`` CLI for load generation.
"""

from repro.serve.backends import (
    ExecutionBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.config import (
    DEFAULT_DEGRADE_THRESHOLDS,
    ExecutionConfig,
    ServeConfig,
)
from repro.serve.errors import (
    Overloaded,
    RequestTimeout,
    ServeError,
    ServerClosed,
    WorkerError,
)
from repro.serve.loadgen import LoadgenReport, run_closed_loop, run_open_loop
from repro.serve.server import KnnServer, ServeResponse
from repro.serve.sharding import ShardPlan, ShardState, make_plan, merge_topk

__all__ = [
    "DEFAULT_DEGRADE_THRESHOLDS",
    "ExecutionBackend",
    "ExecutionConfig",
    "KnnServer",
    "LoadgenReport",
    "MicroBatcher",
    "Overloaded",
    "RequestTimeout",
    "ServeConfig",
    "ServeError",
    "ServeRequest",
    "ServeResponse",
    "ServerClosed",
    "ShardPlan",
    "ShardState",
    "WorkerError",
    "available_backends",
    "make_backend",
    "make_plan",
    "merge_topk",
    "register_backend",
    "run_closed_loop",
    "run_open_loop",
]
