"""Per-tenant streaming sessions: the multi-drive ICP fleet layer.

QuickNN's motivating workload is ICP registration over *streaming*
LiDAR frames — one drive, one evolving reference index, incremental
updates instead of rebuilds (Section 4.4 of the paper).  The serving
analogue of "millions of users" is millions of concurrent drives, far
more than fit in RAM.  :class:`SessionManager` hosts that fleet on a
bounded budget:

* **Create** — a tenant's first frame builds its tree once
  (:func:`~repro.kdtree.build.build_tree`, the *only* full build the
  session ever performs) and boots an unsharded
  :class:`~repro.serve.server.KnnServer` over it via
  :meth:`~repro.serve.server.KnnServer.from_shards`.
* **Incremental update** — each subsequent frame is (optionally)
  ICP-registered against the session's current reference through a
  no-rebuild frozen index, then folded in with
  :func:`repro.kdtree.incremental.update_tree` — the merge/split fast
  path — and swapped into the session's server through the
  generation-stamped warm handoff
  (:meth:`~repro.serve.server.KnnServer.update_reference_shards`).
  ``build.incremental.*`` counters prove no rebuild happened.
* **Spill / restore** — idle sessions are evicted: the session's flat
  tree *and* its node-based structure (still needed for future
  incremental updates) are written as one
  :class:`~repro.kdtree.snapshot.Snapshot`; the next frame or query
  restores the flat arrays verbatim, so a restored session answers
  bit-identically to one that was never evicted.
* **Evict** — residency is bounded by session count and optionally by
  bytes; victims are chosen by a registered eviction policy (``"lru"``
  or ``"cost-aware"``), never a session with in-flight rows.

Admission is **per-tenant fair**: the manager accounts outstanding
query rows globally and per tenant, and a tenant is shed
(:class:`~repro.serve.errors.Overloaded`) once it holds its quota
(``tenant_share`` of the global budget) even when the machine has
capacity left.  Each session's server also runs its own PR 5
degradation ladder over a quota-sized queue, so a hot tenant's requests
*degrade* (tightened engine budgets) and then shed before it can starve
anyone else — observable through ``serve.tenant.*`` metrics, which flow
through the PR 7 cross-process aggregation like every other counter.
"""

from __future__ import annotations

import re
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.icp.icp import IcpConfig, icp_register
from repro.kdtree.build import build_tree
from repro.kdtree.incremental import update_tree
from repro.kdtree.node import KdTree
from repro.kdtree.serialize import tree_from_arrays, tree_to_arrays
from repro.kdtree.snapshot import FLAT_FIELDS, Snapshot
from repro.eviction import EVICTION
from repro.obs import get_registry
from repro.serve.config import ServeConfig
from repro.serve.errors import Overloaded
from repro.serve.server import KnnServer, ServeResponse
from repro.serve.sharding import ShardState

#: Tenant ids become metric names and spill file names, so keep them in
#: the same safe alphabet as shared-memory prefixes.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Prefix under which the node-based tree arrays ride inside a spill
#: snapshot's extras (``tree_points``, ``tree_parent``, ...).
_TREE_PREFIX = "tree_"

#: The shared eviction-policy registry (``"lru"`` / ``"cost-aware"``),
#: re-exported from :mod:`repro.eviction` where the blocked index also
#: resolves it.  Policies key off ``Session.last_active`` and
#: ``Session.nbytes``; victims are evicted in ascending key order.


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of a :class:`SessionManager`.

    Parameters
    ----------
    serve:
        Per-session :class:`~repro.serve.config.ServeConfig` template.
        Sessions are unsharded (``n_shards`` must stay 1 — each tenant
        already is a shard of the fleet); the template's ``max_queue``
        is overridden with the tenant quota so each session's
        degradation ladder fills exactly when the tenant approaches its
        fair share.
    max_resident:
        Resident-session bound; beyond it, idle sessions spill to disk.
    max_resident_bytes:
        Optional byte bound over resident flat trees (cost-aware cap on
        top of the count cap).
    idle_evict_s:
        Sessions idle longer than this are evicted by :meth:`sweep`.
        ``None`` disables idle eviction.
    spill_dir:
        Where spill snapshots live.  ``None`` creates a managed
        temporary directory (cleaned up on :meth:`SessionManager.close`).
    eviction:
        Victim-selection policy, from the :data:`EVICTION` registry.
    max_outstanding_rows:
        Global in-flight query-row budget across all tenants.
    tenant_share:
        Fraction of the global budget one tenant may hold (its quota).
        The fairness invariant: a tenant at quota is shed while the
        others' full quotas remain available.
    register_frames:
        If true, each ``observe_frame`` ICP-registers the new frame
        onto the session's current reference before the incremental
        update — the paper's streaming pipeline.  Registration runs
        against the session's *existing* tree through a frozen index,
        so it never triggers a rebuild.
    icp:
        ICP parameters when ``register_frames`` is set.
    lower_bound / upper_bound:
        Bucket-occupancy bounds for the incremental update; ``None``
        uses the defaults derived from ``serve.tree.bucket_capacity``.
    """

    serve: ServeConfig = field(default_factory=ServeConfig)
    max_resident: int = 8
    max_resident_bytes: int | None = None
    idle_evict_s: float | None = None
    spill_dir: str | Path | None = None
    eviction: str = "lru"
    max_outstanding_rows: int = 4096
    tenant_share: float = 0.5
    register_frames: bool = False
    icp: IcpConfig | None = None
    lower_bound: int | None = None
    upper_bound: int | None = None

    def __post_init__(self):
        if self.serve.n_shards != 1:
            raise ValueError(
                "sessions are unsharded: SessionConfig.serve.n_shards must "
                f"be 1, got {self.serve.n_shards}"
            )
        if self.max_resident < 1:
            raise ValueError("max_resident must be positive")
        if self.max_resident_bytes is not None and self.max_resident_bytes < 1:
            raise ValueError("max_resident_bytes must be positive (or None)")
        if self.idle_evict_s is not None and self.idle_evict_s <= 0:
            raise ValueError("idle_evict_s must be positive (or None)")
        EVICTION.check(self.eviction)
        if self.max_outstanding_rows < 1:
            raise ValueError("max_outstanding_rows must be positive")
        if not (0.0 < self.tenant_share <= 1.0):
            raise ValueError("tenant_share must be in (0, 1]")

    @property
    def quota_rows(self) -> int:
        """Outstanding-row quota of a single tenant."""
        return max(1, int(self.max_outstanding_rows * self.tenant_share))


class _FrozenIndex:
    """A :class:`~repro.index.NeighborIndex` over an existing flat tree
    whose ``build`` is a no-op.

    ``icp_register`` rebinds a prebuilt index to the target cloud with
    ``build(target)``; for a session the target *is* the tree we
    already hold, so rebinding must not rebuild — that would break the
    fleet's zero-full-rebuild guarantee.  ``build`` asserts it is
    handed the same cloud and returns ``self``.
    """

    name = "session-frozen"

    def __init__(self, flat, n_reference: int):
        self._flat = flat
        self._n_reference = n_reference

    def build(self, reference) -> "_FrozenIndex":
        return self

    def query(self, queries, k: int):
        from repro.kdtree.engine import knn_approx_batched

        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return knn_approx_batched(self._flat, q, k)

    def stats(self) -> dict:
        return {"backend": self.name, "n_reference": self._n_reference}


@dataclass
class Session:
    """One tenant's lifecycle state (internal to the manager)."""

    tenant: str
    state: str                      # "resident" | "spilled"
    tree: KdTree | None
    server: KnnServer | None
    created_at: float
    last_active: float
    n_frames: int = 1
    outstanding_rows: int = 0
    nbytes: int = 0

    @property
    def resident(self) -> bool:
        return self.state == "resident"


def _flat_nbytes(flat) -> int:
    return int(sum(getattr(flat, name).nbytes for name in FLAT_FIELDS))


def _shard_for(tree: KdTree) -> ShardState:
    """The session's single shard: its flat tree with identity ids."""
    flat = tree.flat()
    return ShardState(
        tree=flat,
        global_ids=np.arange(flat.points.shape[0], dtype=np.int64),
    )


class SessionManager:
    """Bounded-memory host for per-tenant streaming kNN sessions.

    Thread-safe: all lifecycle transitions run under one re-entrant
    lock — coarse-grained on purpose (session churn is rare next to
    query work, and queries only touch the lock for row accounting; the
    engine work inside each session's server runs outside it).

    Usage::

        with SessionManager(SessionConfig(max_resident=16)) as fleet:
            fleet.observe_frame("drive-0", frame0_xyz)   # create
            fleet.observe_frame("drive-0", frame1_xyz)   # incremental
            resp = fleet.query("drive-0", rows, k=8)
    """

    def __init__(self, config: SessionConfig | None = None, *,
                 clock=time.monotonic):
        self.config = config or SessionConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self._sessions: dict[str, Session] = {}
        self._outstanding_rows = 0
        self._closed = False
        self._stat_counters: dict[str, float] = {}
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if self.config.spill_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="quicknn-spill-")
            self._spill_dir = Path(self._tmpdir.name)
        else:
            self._spill_dir = Path(self.config.spill_dir)
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        self._session_serve = replace(
            self.config.serve, max_queue=self.config.quota_rows
        )

    # ------------------------------------------------------------------
    # Frame path: create / incremental update / warm handoff
    # ------------------------------------------------------------------
    def observe_frame(self, tenant: str, points) -> dict:
        """Fold one frame into ``tenant``'s session (creating it).

        The first frame builds the tree (the session's only full
        build); every later frame runs the incremental ``update_tree``
        fast path and warm-hands the result into the session's server.
        Returns a summary: whether the session was created or restored,
        the new generation, and the incremental-update trace.
        """
        xyz = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError("points must have shape (N, 3)")
        with self._lock:
            self._check_open()
            now = self._clock()
            if tenant not in self._sessions:
                session = self._create(tenant, xyz, now)
                self._enforce_residency(now, keep=tenant)
                return {
                    "tenant": tenant, "created": True, "restored": False,
                    "generation": 0, "n_points": int(xyz.shape[0]),
                    "update": None, "icp": None,
                }
            session, restored = self._resident(tenant, now)
            icp_summary = None
            if self.config.register_frames:
                xyz, icp_summary = self._register(session, xyz)
            new_tree, trace = update_tree(
                session.tree, xyz, self.config.serve.tree,
                lower_bound=self.config.lower_bound,
                upper_bound=self.config.upper_bound,
            )
            shard = _shard_for(new_tree)
            handoff = session.server.update_reference_shards((shard,))
            session.tree = new_tree
            session.nbytes = _flat_nbytes(shard.tree)
            session.n_frames += 1
            session.last_active = self._clock()
            self._count(f"serve.tenant.{tenant}.frames", 1)
            self._enforce_residency(session.last_active, keep=tenant)
            return {
                "tenant": tenant, "created": False, "restored": restored,
                "generation": handoff["generation"],
                "n_points": int(xyz.shape[0]),
                "update": trace.as_dict(), "icp": icp_summary,
            }

    def _create(self, tenant: str, xyz: np.ndarray, now: float) -> Session:
        if not _TENANT_RE.match(tenant):
            raise ValueError(
                "tenant ids must be 1-64 characters of [A-Za-z0-9._-] "
                f"starting alphanumeric, got {tenant!r}"
            )
        tree, _ = build_tree(xyz, self.config.serve.tree)
        shard = _shard_for(tree)
        server = KnnServer.from_shards(
            (shard,), self._session_serve, clock=self._clock
        )
        session = Session(
            tenant=tenant, state="resident", tree=tree, server=server,
            created_at=now, last_active=now, nbytes=_flat_nbytes(shard.tree),
        )
        self._sessions[tenant] = session
        self._count("serve.sessions.created", 1)
        self._gauge_resident()
        return session

    def _register(
        self, session: Session, xyz: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        """ICP-register ``xyz`` onto the session's current reference."""
        flat = session.tree.flat()
        frozen = _FrozenIndex(flat, session.tree.n_points)
        icp_cfg = self.config.icp or IcpConfig()
        result = icp_register(xyz, session.tree.points,
                              replace(icp_cfg, knn=frozen))
        registered = result.transform.apply(xyz)
        return registered, {
            "iterations": result.iterations,
            "converged": result.converged,
            "rms_error": result.rms_error,
        }

    # ------------------------------------------------------------------
    # Query path: per-tenant fair admission
    # ------------------------------------------------------------------
    def submit(self, tenant: str, queries, k: int, *, mode: str = "exact",
               allow_degraded: bool = False):
        """Admit rows for ``tenant``; returns a ``Future[ServeResponse]``.

        Sheds with :class:`~repro.serve.errors.Overloaded` when the
        *global* outstanding-row budget is exhausted, when ``tenant``
        is at its quota (fair-share shed — other tenants are
        unaffected), or when the session's own queue is full.
        """
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3 or q.shape[0] == 0:
            raise ValueError("queries must have shape (m, 3) with m >= 1")
        rows = int(q.shape[0])
        quota = self.config.quota_rows
        with self._lock:
            self._check_open()
            if tenant not in self._sessions:
                raise KeyError(f"unknown tenant {tenant!r}; observe a frame first")
            now = self._clock()
            self._count(f"serve.tenant.{tenant}.requests", 1)
            self._count(f"serve.tenant.{tenant}.rows", rows)
            session = self._sessions[tenant]
            if self._outstanding_rows + rows > self.config.max_outstanding_rows:
                self._count(f"serve.tenant.{tenant}.shed", 1)
                raise Overloaded(self._outstanding_rows,
                                 self.config.max_outstanding_rows)
            if session.outstanding_rows + rows > quota:
                self._count(f"serve.tenant.{tenant}.shed", 1)
                raise Overloaded(session.outstanding_rows, quota)
            session, _ = self._resident(tenant, now)
            try:
                future = session.server.submit(
                    q, k, mode=mode, allow_degraded=allow_degraded
                )
            except Overloaded:
                self._count(f"serve.tenant.{tenant}.shed", 1)
                raise
            session.outstanding_rows += rows
            self._outstanding_rows += rows
            session.last_active = now
        future.add_done_callback(
            lambda fut: self._settle(tenant, rows, fut)
        )
        return future

    def query(self, tenant: str, queries, k: int, *, mode: str = "exact",
              allow_degraded: bool = False,
              timeout: float | None = None) -> ServeResponse:
        """Blocking :meth:`submit`."""
        return self.submit(
            tenant, queries, k, mode=mode, allow_degraded=allow_degraded
        ).result(timeout=timeout)

    def _settle(self, tenant: str, rows: int, future) -> None:
        """Release row accounting and classify the outcome."""
        with self._lock:
            self._outstanding_rows = max(0, self._outstanding_rows - rows)
            session = self._sessions.get(tenant)
            if session is not None:
                session.outstanding_rows = max(
                    0, session.outstanding_rows - rows
                )
            exc = future.exception()
            if exc is None:
                self._count(f"serve.tenant.{tenant}.completed", 1)
                if future.result().degraded:
                    self._count(f"serve.tenant.{tenant}.degraded", 1)
            else:
                from repro.serve.errors import RequestTimeout

                kind = ("timeouts" if isinstance(exc, RequestTimeout)
                        else "errors")
                self._count(f"serve.tenant.{tenant}.{kind}", 1)

    # ------------------------------------------------------------------
    # Residency: spill / restore / evict
    # ------------------------------------------------------------------
    def _resident(self, tenant: str, now: float) -> tuple[Session, bool]:
        """The tenant's session, restored from spill if needed."""
        session = self._sessions[tenant]
        if session.resident:
            return session, False
        snap = Snapshot.load(self._spill_path(tenant))
        tree_arrays = {
            name[len(_TREE_PREFIX):]: value
            for name, value in snap.extras.items()
            if name.startswith(_TREE_PREFIX)
        }
        session.tree = tree_from_arrays(tree_arrays)
        # Serve from the snapshot's flat arrays *verbatim* — the
        # restored shard is byte-for-byte the one that was spilled, so
        # answers match a never-evicted twin exactly.
        shard = ShardState(
            tree=snap.to_flat(),
            global_ids=np.asarray(snap.extras["global_ids"], dtype=np.int64),
        )
        session.server = KnnServer.from_shards(
            (shard,), self._session_serve, clock=self._clock
        )
        session.state = "resident"
        session.nbytes = _flat_nbytes(shard.tree)
        session.last_active = now
        self._count("serve.sessions.restored", 1)
        self._gauge_resident()
        self._enforce_residency(now, keep=tenant)
        return session, True

    def _spill(self, session: Session) -> None:
        flat = session.tree.flat()
        extras = {"global_ids": np.arange(flat.points.shape[0], dtype=np.int64)}
        for name, value in tree_to_arrays(session.tree).items():
            extras[_TREE_PREFIX + name] = value
        Snapshot.from_flat(flat, extra=extras).save(
            self._spill_path(session.tenant)
        )
        session.server.close()
        session.server = None
        session.tree = None
        session.state = "spilled"
        session.nbytes = 0
        self._count("serve.sessions.spilled", 1)
        self._count("serve.sessions.evicted", 1)
        self._gauge_resident()

    def _spill_path(self, tenant: str) -> Path:
        return self._spill_dir / f"{tenant}.npz"

    def _enforce_residency(self, now: float, *, keep: str | None = None) -> None:
        policy = EVICTION.resolve(self.config.eviction)
        while True:
            resident = [s for s in self._sessions.values() if s.resident]
            over_count = len(resident) > self.config.max_resident
            over_bytes = (
                self.config.max_resident_bytes is not None
                and sum(s.nbytes for s in resident)
                > self.config.max_resident_bytes
            )
            if not (over_count or over_bytes):
                return
            victims = sorted(
                (
                    s for s in resident
                    if s.outstanding_rows == 0 and s.tenant != keep
                ),
                key=lambda s: policy(s, now),
            )
            if not victims:
                return      # everyone is busy; stay temporarily over budget
            self._spill(victims[0])

    def sweep(self) -> list[str]:
        """Idle eviction plus residency re-enforcement; returns evictees.

        Residency bounds are normally enforced at frame and restore
        events; when every resident session had in-flight rows at its
        last event the manager can sit temporarily over budget.  A
        periodic ``sweep`` from a maintenance thread converges it, and
        additionally evicts sessions idle past ``idle_evict_s``.
        """
        evicted = []
        with self._lock:
            now = self._clock()
            if self.config.idle_evict_s is not None:
                for session in self._sessions.values():
                    if (
                        session.resident
                        and session.outstanding_rows == 0
                        and now - session.last_active >= self.config.idle_evict_s
                    ):
                        self._spill(session)
                        evicted.append(session.tenant)
            before = {
                s.tenant for s in self._sessions.values() if not s.resident
            }
            self._enforce_residency(now)
            evicted.extend(
                s.tenant
                for s in self._sessions.values()
                if not s.resident and s.tenant not in before
                and s.tenant not in evicted
            )
        return evicted

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def tenants(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._sessions))

    def stats(self) -> dict:
        """Structured fleet snapshot (always on, like ``KnnServer.stats``)."""
        with self._lock:
            resident = [s for s in self._sessions.values() if s.resident]
            return {
                "n_sessions": len(self._sessions),
                "n_resident": len(resident),
                "n_spilled": len(self._sessions) - len(resident),
                "resident_bytes": int(sum(s.nbytes for s in resident)),
                "outstanding_rows": self._outstanding_rows,
                "quota_rows": self.config.quota_rows,
                "counters": dict(self._stat_counters),
                "sessions": {
                    s.tenant: {
                        "state": s.state,
                        "n_frames": s.n_frames,
                        "outstanding_rows": s.outstanding_rows,
                        "nbytes": s.nbytes,
                        "generation": (
                            s.server.generation if s.server is not None else -1
                        ),
                    }
                    for s in self._sessions.values()
                },
            }

    def close(self) -> None:
        """Close every session's server and the managed spill dir."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for session in self._sessions.values():
                if session.server is not None:
                    session.server.close()
                    session.server = None
            self._sessions.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            from repro.serve.errors import ServerClosed

            raise ServerClosed()

    def _count(self, name: str, n: int) -> None:
        # Always-on dict for stats(); obs counter when enabled, so the
        # tenant fairness metrics ride the PR 7 aggregation unchanged.
        self._stat_counters[name] = self._stat_counters.get(name, 0) + n
        obs = get_registry()
        if obs.enabled:
            obs.counter(name).inc(n)

    def _gauge_resident(self) -> None:
        obs = get_registry()
        if obs.enabled:
            obs.gauge("serve.sessions.resident").set(
                sum(1 for s in self._sessions.values() if s.resident)
            )
