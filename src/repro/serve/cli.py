"""``quicknn-serve``: drive a KnnServer against a synthetic LiDAR frame.

Three subcommands:

* ``bench`` — closed-loop throughput comparison: one-at-a-time
  (``concurrency=1``) versus concurrent submission through the same
  micro-batching server.  The speedup column is the serving layer's
  reason to exist; the acceptance bar is >= 3x on the paper's
  30k-point operating frame.
* ``load`` — open-loop Poisson arrivals at a fixed offered rate;
  reports latency percentiles and typed shed/timeout counts.  With
  ``--fail-on-errors`` the exit code asserts a clean run (the CI
  serve-smoke job).
* ``smoke`` — a fast preset of ``load`` sized for CI (~seconds).

All subcommands accept ``--json PATH`` to write the full report as a
machine-readable artifact, including a snapshot of the ``serve.*``
metrics.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.datasets import lidar_frame
from repro.obs import MetricsRegistry, set_registry
from repro.serve.config import ServeConfig
from repro.serve.loadgen import run_closed_loop, run_open_loop
from repro.serve.server import KnnServer


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--points", type=int, default=30_000,
                        help="reference frame size (default: 30000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="frame/query RNG seed (default: 0)")
    parser.add_argument("--shards", type=int, default=1,
                        help="point shards (default: 1)")
    parser.add_argument("--sharding", choices=("round-robin", "spatial"),
                        default="round-robin")
    parser.add_argument("--replicas", type=int, default=1,
                        help="worker threads per shard (default: 1)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size in query rows (default: 256)")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="batch formation deadline (default: 2ms)")
    parser.add_argument("--max-queue", type=int, default=4096,
                        help="admission bound in queued rows (default: 4096)")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--mode", choices=("exact", "approx"), default="exact")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report as JSON to PATH ('-' = stdout)")


def _make_config(args) -> ServeConfig:
    return ServeConfig(
        n_shards=args.shards,
        sharding=args.sharding,
        n_replicas=args.replicas,
        max_batch_size=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        max_queue=args.max_queue,
    )


def _workload(args) -> tuple[np.ndarray, np.ndarray]:
    reference = lidar_frame(args.points, seed=args.seed).xyz
    rng = np.random.default_rng(args.seed + 1)
    jitter = rng.normal(scale=0.05, size=reference.shape)
    queries = reference[rng.permutation(reference.shape[0])] + jitter
    return reference, queries


def _emit(payload: dict, json_path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path == "-":
        print(text)
    elif json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _serve_metrics(registry: MetricsRegistry) -> dict:
    return {
        name: value
        for name, value in registry.as_dict().items()
        if name.startswith("serve.")
    }


def _cmd_bench(args) -> int:
    registry = MetricsRegistry()
    set_registry(registry)
    reference, queries = _workload(args)
    queries = queries[: args.queries]
    config = _make_config(args)
    with KnnServer(reference, config) as server:
        baseline = run_closed_loop(
            server, queries, args.k, mode=args.mode, concurrency=1
        )
        batched = run_closed_loop(
            server, queries, args.k, mode=args.mode,
            concurrency=args.concurrency,
        )
    speedup = (
        batched.throughput_qps / baseline.throughput_qps
        if baseline.throughput_qps > 0
        else float("inf")
    )
    payload = {
        "bench": {
            "n_reference": int(reference.shape[0]),
            "n_queries": int(queries.shape[0]),
            "k": args.k,
            "mode": args.mode,
            "config": {
                "n_shards": config.n_shards,
                "max_batch_size": config.max_batch_size,
                "max_delay_s": config.max_delay_s,
            },
            "one_at_a_time": baseline.as_dict(),
            "micro_batched": batched.as_dict(),
            "speedup": speedup,
        },
        "metrics": _serve_metrics(registry),
    }
    _emit(payload, args.json)
    print(
        f"one-at-a-time: {baseline.throughput_qps:,.0f} rows/s | "
        f"micro-batched (c={args.concurrency}): "
        f"{batched.throughput_qps:,.0f} rows/s | speedup {speedup:.1f}x"
    )
    errors = baseline.errors + batched.errors
    if errors:
        print(f"FAIL: {errors} errored requests", file=sys.stderr)
        return 1
    return 0


def _cmd_load(args) -> int:
    registry = MetricsRegistry()
    set_registry(registry)
    reference, queries = _workload(args)
    config = _make_config(args)
    with KnnServer(reference, config) as server:
        report = run_open_loop(
            server, queries, args.k, mode=args.mode,
            rate_qps=args.rate, duration_s=args.duration,
            rows_per_request=args.rows_per_request, seed=args.seed,
            allow_degraded=args.allow_degraded,
        )
    payload = {
        "load": report.as_dict(),
        "config": {
            "n_shards": config.n_shards,
            "max_batch_size": config.max_batch_size,
            "max_delay_s": config.max_delay_s,
            "max_queue": config.max_queue,
        },
        "metrics": _serve_metrics(registry),
    }
    _emit(payload, args.json)
    print(
        f"offered {report.offered} | completed {report.completed} | "
        f"shed {report.shed} | timed out {report.timed_out} | "
        f"errors {report.errors} | "
        f"p50 {report.percentile(50):.2f}ms p99 {report.percentile(99):.2f}ms"
    )
    if args.fail_on_errors and report.errors:
        print(f"FAIL: {report.errors} errored requests", file=sys.stderr)
        return 1
    if args.fail_on_errors and report.completed == 0:
        print("FAIL: no requests completed", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quicknn-serve",
        description="Load-test the repro.serve kNN serving layer on a "
        "synthetic LiDAR frame.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser(
        "bench", help="closed-loop throughput: one-at-a-time vs micro-batched"
    )
    _add_server_args(bench)
    bench.add_argument("--queries", type=int, default=4096,
                       help="query rows per arm (default: 4096)")
    bench.add_argument("--concurrency", type=int, default=64,
                       help="submitters in the batched arm (default: 64)")
    bench.set_defaults(func=_cmd_bench)

    load = sub.add_parser(
        "load", help="open-loop Poisson load with latency percentiles"
    )
    _add_server_args(load)
    load.add_argument("--rate", type=float, default=2000.0,
                      help="offered requests/s (default: 2000)")
    load.add_argument("--duration", type=float, default=5.0,
                      help="offering window seconds (default: 5)")
    load.add_argument("--rows-per-request", type=int, default=1)
    load.add_argument("--allow-degraded", action="store_true",
                      help="let exact requests degrade under load")
    load.add_argument("--fail-on-errors", action="store_true",
                      help="exit 1 unless zero errored requests")
    load.set_defaults(func=_cmd_load)

    smoke = sub.add_parser(
        "smoke", help="CI preset of 'load': small frame, short window"
    )
    _add_server_args(smoke)
    smoke.add_argument("--rate", type=float, default=1500.0)
    smoke.add_argument("--duration", type=float, default=3.0)
    smoke.add_argument("--rows-per-request", type=int, default=1)
    smoke.add_argument("--allow-degraded", action="store_true")
    smoke.set_defaults(func=_cmd_load, fail_on_errors=True)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
