"""``quicknn-serve``: drive a KnnServer against a synthetic LiDAR frame.

Three subcommands:

* ``bench`` — closed-loop throughput comparison: one-at-a-time
  (``concurrency=1``) versus concurrent submission through the same
  micro-batching server.  The speedup column is the serving layer's
  reason to exist; the acceptance bar is >= 3x on the paper's
  30k-point operating frame.  With ``--backend process`` a thread
  reference arm also runs, so the report carries
  ``process_speedup_vs_thread``; ``--bench-json`` writes the
  committed-trajectory artifact (``BENCH_serve.json`` schema) with
  machine-normalized numbers and honesty notes.
* ``load`` — open-loop Poisson arrivals at a fixed offered rate;
  reports latency percentiles and typed shed/timeout counts.  With
  ``--fail-on-errors`` the exit code asserts a clean run (the CI
  serve-smoke job, which runs it under both execution backends).
* ``smoke`` — a fast preset of ``load`` sized for CI (~seconds).
* ``fleet`` — N concurrent synthetic drives through the per-tenant
  session layer (:mod:`repro.serve.sessions`): every tenant's first
  frame builds its index once, every later frame takes the incremental
  fast path and warm-hands over, idle sessions spill to disk and
  restore bit-identically.  ``--fail-on-rebuild`` asserts the
  steady-state contract (zero full rebuilds after session creation)
  from the ``build.*`` counters.

All subcommands accept ``--json PATH`` to write the full report as a
machine-readable artifact, including a snapshot of the ``serve.*``
metrics, and ``--backend {thread,process}`` to pick the execution
backend (see ``docs/serving.md``).  Observability flags work under
*both* backends — worker processes stream their metric deltas and
trace spans back to the coordinator:

* ``--profile PATH`` — full machine-wide metric dump (JSON), including
  the worker-side ``engine.*`` totals and per-worker ``worker.<i>.*``
  breakdowns;
* ``--trace PATH`` — one merged Chrome/Perfetto trace with every
  process on its own labelled track, spans stamped with request ids;
* ``--prom PATH`` — Prometheus text exposition of the same registry;
* ``--stats-interval S`` — a periodic one-line server stats report on
  stderr (``load``/``smoke`` default to 1s; ``bench`` is opt-in).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading

import numpy as np

from repro.datasets import lidar_frame
from repro.obs import (
    MetricsRegistry,
    set_registry,
    write_chrome_trace,
    write_profile,
    write_prometheus,
)
from repro.serve.backends import available_backends
from repro.serve.config import ExecutionConfig, ServeConfig
from repro.serve.loadgen import run_closed_loop, run_open_loop
from repro.serve.server import KnnServer

#: Schema tag of the --bench-json artifact (bump on layout changes).
BENCH_SCHEMA = "quicknn-bench-serve/v1"


def _add_server_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--points", type=int, default=30_000,
                        help="reference frame size (default: 30000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="frame/query RNG seed (default: 0)")
    parser.add_argument("--shards", type=int, default=1,
                        help="point shards (default: 1)")
    parser.add_argument("--sharding", choices=("round-robin", "spatial"),
                        default="round-robin")
    parser.add_argument("--replicas", type=int, default=1,
                        help="shard replicas: worker threads per shard, or the "
                        "default worker-process count (default: 1)")
    parser.add_argument("--backend", choices=available_backends(),
                        default="thread",
                        help="execution backend (default: thread)")
    parser.add_argument("--processes", type=int, default=None,
                        help="worker processes per shard under --backend "
                        "process (default: --replicas)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size in query rows (default: 256)")
    parser.add_argument("--max-delay-ms", type=float, default=2.0,
                        help="batch formation deadline (default: 2ms)")
    parser.add_argument("--max-queue", type=int, default=4096,
                        help="admission bound in queued rows (default: 4096)")
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--mode", choices=("exact", "approx"), default="exact")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report as JSON to PATH ('-' = stdout)")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="write the machine-wide metric profile (JSON, "
                        "worker-side engine.* included) to PATH")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record spans and write one merged Chrome/"
                        "Perfetto trace (all processes) to PATH")
    parser.add_argument("--prom", metavar="PATH", default=None,
                        help="write a Prometheus text exposition of the "
                        "metrics to PATH")
    parser.add_argument("--stats-interval", type=float, default=None,
                        metavar="S",
                        help="print a server stats line to stderr every S "
                        "seconds (0 disables; load/smoke default 1s)")


def _make_config(args, *, backend: str | None = None) -> ServeConfig:
    return ServeConfig(
        n_shards=args.shards,
        sharding=args.sharding,
        n_replicas=args.replicas,
        max_batch_size=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        max_queue=args.max_queue,
        execution=ExecutionConfig(
            backend=backend if backend is not None else args.backend,
            processes=args.processes,
        ),
    )


def _workload(args) -> tuple[np.ndarray, np.ndarray]:
    reference = lidar_frame(args.points, seed=args.seed).xyz
    rng = np.random.default_rng(args.seed + 1)
    jitter = rng.normal(scale=0.05, size=reference.shape)
    queries = reference[rng.permutation(reference.shape[0])] + jitter
    return reference, queries


def _emit(payload: dict, json_path: str | None) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path == "-":
        print(text)
    elif json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _serve_metrics(registry: MetricsRegistry) -> dict:
    return {
        name: value
        for name, value in registry.as_dict().items()
        if name.startswith("serve.")
    }


def _make_registry(args) -> MetricsRegistry:
    """The run's live registry; tracing on iff ``--trace`` asked for it."""
    registry = MetricsRegistry(trace=args.trace is not None)
    set_registry(registry)
    return registry


def _write_obs_artifacts(registry: MetricsRegistry, args, **sections) -> None:
    if args.profile:
        write_profile(args.profile, registry, **sections)
    if args.trace:
        write_chrome_trace(args.trace, registry)
    if args.prom:
        write_prometheus(args.prom, registry)


def _stats_line(stats: dict) -> str:
    counters = stats["counters"]

    def c(name):
        return int(counters.get(f"serve.{name}", 0))

    return (
        f"[stats] gen={stats['generation']} queue={stats['queue_rows']} "
        f"inflight={stats['inflight_jobs']} degrade={stats['degrade_level']} "
        f"completed={c('completed')} shed={c('shed')} "
        f"timeouts={c('timeouts')} retries={c('retries')} "
        f"errors={c('errors')}"
    )


class _StatsReporter:
    """Background thread printing one server stats line per interval.

    The CLI's live surface: ``quicknn-serve load --stats-interval 1``
    shows queue depth, degradation level, and the lifetime counters
    while the run is in progress, on stderr so report parsing of
    stdout/``--json`` stays clean.  A non-positive interval disables
    the reporter entirely (zero threads started).
    """

    def __init__(self, server: KnnServer, interval_s: float | None):
        self._server = server
        self._interval = interval_s or 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_StatsReporter":
        if self._interval > 0:
            self._thread = threading.Thread(
                target=self._run, name="serve-stats", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                print(_stats_line(self._server.stats()), file=sys.stderr)
            except Exception:  # pragma: no cover - racing server close
                return

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)


def _bench_arm(reference, queries, config, args, *, concurrency: int,
               repeats: int, stats_interval: float = 0.0) -> dict:
    """Run one closed-loop arm ``repeats`` times; report the best run.

    Best-of is the standard defence against scheduler noise on shared
    machines: the fastest repeat is the least-interfered measurement.
    The per-repeat throughputs are kept so the artifact stays honest
    about the spread.
    """
    best = None
    runs = []
    with KnnServer(reference, config) as server, \
            _StatsReporter(server, stats_interval):
        for _ in range(repeats):
            report = run_closed_loop(
                server, queries, args.k, mode=args.mode,
                concurrency=concurrency,
            )
            runs.append(report.throughput_qps)
            if best is None or report.throughput_qps > best.throughput_qps:
                best = report
    out = best.as_dict()
    out["throughput_qps_runs"] = runs
    out["repeats"] = repeats
    return out


def _machine_info() -> dict:
    import os

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _bench_artifact(bench: dict, args) -> dict:
    """The ``BENCH_serve.json`` committed-trajectory artifact.

    Throughputs are additionally normalized per CPU core so numbers
    from different machines land on comparable footing, and
    ``extra_info.notes`` records every caveat a reader needs before
    trusting a comparison.
    """
    machine = _machine_info()
    cores = machine["cpu_count"]
    notes = [
        "best-of-{} closed-loop runs per arm; per-repeat throughputs "
        "kept in throughput_qps_runs".format(bench["repeats"]),
        "qps_per_core divides by os.cpu_count(); it normalizes machine "
        "size, not memory bandwidth or clock",
    ]
    if cores < 4:
        notes.append(
            f"measured on a {cores}-core machine: the process backend "
            "cannot demonstrate multi-core scaling here (expect <=1x vs "
            "thread); re-run on >=4 cores for the scaling claim"
        )
    benchmarks = []
    for arm in ("one_at_a_time", "micro_batched", "micro_batched_thread"):
        if arm not in bench:
            continue
        qps = bench[arm]["throughput_qps"]
        benchmarks.append(
            {
                "name": f"serve.{arm}",
                "backend": bench["backend"] if arm != "micro_batched_thread"
                else "thread",
                "qps": qps,
                "qps_per_core": qps / cores,
                "qps_runs": bench[arm]["throughput_qps_runs"],
                "latency_ms_p50": bench[arm]["latency_ms"]["p50"],
                "latency_ms_p99": bench[arm]["latency_ms"]["p99"],
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "params": {
            "points": bench["n_reference"],
            "queries": bench["n_queries"],
            "k": bench["k"],
            "mode": bench["mode"],
            "shards": args.shards,
            "replicas": args.replicas,
            "concurrency": args.concurrency,
            "backend": bench["backend"],
        },
        "machine": machine,
        "benchmarks": benchmarks,
        "derived": {
            "speedup_batched_vs_serial": bench["speedup"],
            "process_speedup_vs_thread": bench.get(
                "process_speedup_vs_thread"
            ),
        },
        "extra_info": {"notes": notes},
    }


def _cmd_bench(args) -> int:
    registry = _make_registry(args)
    stats_interval = args.stats_interval or 0.0   # opt-in for bench
    reference, queries = _workload(args)
    queries = queries[: args.queries]
    config = _make_config(args)
    baseline = _bench_arm(reference, queries, config, args,
                          concurrency=1, repeats=args.repeats,
                          stats_interval=stats_interval)
    batched = _bench_arm(reference, queries, config, args,
                         concurrency=args.concurrency, repeats=args.repeats,
                         stats_interval=stats_interval)
    speedup = (
        batched["throughput_qps"] / baseline["throughput_qps"]
        if baseline["throughput_qps"] > 0
        else float("inf")
    )
    bench = {
        "n_reference": int(reference.shape[0]),
        "n_queries": int(queries.shape[0]),
        "k": args.k,
        "mode": args.mode,
        "backend": args.backend,
        "repeats": args.repeats,
        "config": {
            "n_shards": config.n_shards,
            "max_batch_size": config.max_batch_size,
            "max_delay_s": config.max_delay_s,
            "backend": config.execution.backend,
        },
        "one_at_a_time": baseline,
        "micro_batched": batched,
        "speedup": speedup,
    }
    if args.backend == "process":
        # Reference arm: same batched load on the thread backend, so the
        # report can state the process backend's win (or honest loss).
        thread_config = _make_config(args, backend="thread")
        thread_batched = _bench_arm(
            reference, queries, thread_config, args,
            concurrency=args.concurrency, repeats=args.repeats,
        )
        bench["micro_batched_thread"] = thread_batched
        bench["process_speedup_vs_thread"] = (
            batched["throughput_qps"] / thread_batched["throughput_qps"]
            if thread_batched["throughput_qps"] > 0
            else float("inf")
        )
    payload = {"bench": bench, "metrics": _serve_metrics(registry)}
    _emit(payload, args.json)
    _write_obs_artifacts(registry, args, bench=bench)
    if args.bench_json:
        with open(args.bench_json, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(_bench_artifact(bench, args), indent=2,
                                sort_keys=True) + "\n")
    line = (
        f"[{args.backend}] one-at-a-time: "
        f"{baseline['throughput_qps']:,.0f} rows/s | "
        f"micro-batched (c={args.concurrency}): "
        f"{batched['throughput_qps']:,.0f} rows/s | speedup {speedup:.1f}x"
    )
    if "process_speedup_vs_thread" in bench:
        line += (
            f" | vs thread batched: "
            f"{bench['process_speedup_vs_thread']:.2f}x"
        )
    print(line)
    errors = baseline["errors"] + batched["errors"]
    if errors:
        print(f"FAIL: {errors} errored requests", file=sys.stderr)
        return 1
    return 0


def _cmd_load(args) -> int:
    registry = _make_registry(args)
    stats_interval = (
        1.0 if args.stats_interval is None else args.stats_interval
    )
    reference, queries = _workload(args)
    config = _make_config(args)
    with KnnServer(reference, config) as server, \
            _StatsReporter(server, stats_interval):
        report = run_open_loop(
            server, queries, args.k, mode=args.mode,
            rate_qps=args.rate, duration_s=args.duration,
            rows_per_request=args.rows_per_request, seed=args.seed,
            allow_degraded=args.allow_degraded,
        )
    payload = {
        "load": report.as_dict(),
        "config": {
            "n_shards": config.n_shards,
            "max_batch_size": config.max_batch_size,
            "max_delay_s": config.max_delay_s,
            "max_queue": config.max_queue,
        },
        "metrics": _serve_metrics(registry),
    }
    _emit(payload, args.json)
    _write_obs_artifacts(registry, args, load=report.as_dict())
    print(
        f"offered {report.offered} | completed {report.completed} | "
        f"shed {report.shed} | timed out {report.timed_out} | "
        f"errors {report.errors} | "
        f"p50 {report.percentile(50):.2f}ms p99 {report.percentile(99):.2f}ms"
    )
    if args.fail_on_errors and report.errors:
        print(f"FAIL: {report.errors} errored requests", file=sys.stderr)
        return 1
    if args.fail_on_errors and report.completed == 0:
        print("FAIL: no requests completed", file=sys.stderr)
        return 1
    return 0


def _cmd_fleet(args) -> int:
    from repro.serve.fleet import FleetConfig, run_fleet
    from repro.serve.sessions import SessionConfig

    registry = _make_registry(args)
    serve = ServeConfig(
        n_shards=1,
        max_batch_size=args.max_batch,
        max_delay_s=args.max_delay_ms / 1e3,
        execution=ExecutionConfig(
            backend=args.backend, processes=args.processes
        ),
    )
    session = SessionConfig(
        serve=serve,
        max_resident=args.max_resident,
        eviction=args.eviction,
        max_outstanding_rows=args.max_queue,
        tenant_share=args.tenant_share,
    )
    config = FleetConfig(
        n_tenants=args.tenants,
        n_frames=args.frames,
        points_per_frame=args.points,
        queries_per_frame=args.queries_per_frame,
        rows_per_request=args.rows_per_request,
        k=args.k,
        mode=args.mode,
        seed=args.seed,
        distinct_drives=args.distinct_drives,
        session=session,
    )
    report = run_fleet(config)
    payload = {"fleet": report.as_dict(), "metrics": _serve_metrics(registry)}
    _emit(payload, args.json)
    _write_obs_artifacts(registry, args, fleet=report.as_dict())
    agg = report.aggregate()
    mgr = report.manager_stats
    print(
        f"[{args.backend}] {report.n_tenants} drives x {report.n_frames} "
        f"frames in {report.duration_s:.1f}s | "
        f"completed {agg['completed']} | shed {agg['shed']} | "
        f"errors {agg['errors']} | "
        f"builds {report.full_builds} | "
        f"incremental {report.incremental_updates} | "
        f"spills {int(mgr['counters'].get('serve.sessions.spilled', 0))} | "
        f"restores {int(mgr['counters'].get('serve.sessions.restored', 0))}"
    )
    failures = []
    if agg["errors"]:
        failures.append(f"{agg['errors']} errored requests")
    if report.frame_errors:
        failures.append(f"{report.frame_errors} failed frame observations")
    if agg["completed"] == 0 and config.queries_per_frame > 0:
        failures.append("no requests completed")
    if args.fail_on_rebuild and report.zero_rebuild is not True:
        failures.append(
            f"rebuild contract violated: {report.full_builds} full builds "
            f"for {report.n_tenants} tenants, "
            f"{report.incremental_updates} incremental updates "
            f"(expected {report.n_tenants * (report.n_frames - 1)})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quicknn-serve",
        description="Load-test the repro.serve kNN serving layer on a "
        "synthetic LiDAR frame.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser(
        "bench", help="closed-loop throughput: one-at-a-time vs micro-batched"
    )
    _add_server_args(bench)
    bench.add_argument("--queries", type=int, default=4096,
                       help="query rows per arm (default: 4096)")
    bench.add_argument("--concurrency", type=int, default=64,
                       help="submitters in the batched arm (default: 64)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="closed-loop runs per arm; best-of is reported "
                       "(default: 3)")
    bench.add_argument("--bench-json", metavar="PATH", default=None,
                       help="write the BENCH_serve.json trajectory artifact "
                       "(schema'd, machine-normalized) to PATH")
    bench.set_defaults(func=_cmd_bench)

    load = sub.add_parser(
        "load", help="open-loop Poisson load with latency percentiles"
    )
    _add_server_args(load)
    load.add_argument("--rate", type=float, default=2000.0,
                      help="offered requests/s (default: 2000)")
    load.add_argument("--duration", type=float, default=5.0,
                      help="offering window seconds (default: 5)")
    load.add_argument("--rows-per-request", type=int, default=1)
    load.add_argument("--allow-degraded", action="store_true",
                      help="let exact requests degrade under load")
    load.add_argument("--fail-on-errors", action="store_true",
                      help="exit 1 unless zero errored requests")
    load.set_defaults(func=_cmd_load)

    smoke = sub.add_parser(
        "smoke", help="CI preset of 'load': small frame, short window"
    )
    _add_server_args(smoke)
    smoke.add_argument("--rate", type=float, default=1500.0)
    smoke.add_argument("--duration", type=float, default=3.0)
    smoke.add_argument("--rows-per-request", type=int, default=1)
    smoke.add_argument("--allow-degraded", action="store_true")
    smoke.set_defaults(func=_cmd_load, fail_on_errors=True)

    fleet = sub.add_parser(
        "fleet", help="N concurrent synthetic drives through the session "
        "layer (per-tenant indexes, incremental updates, spill/restore)"
    )
    _add_server_args(fleet)
    fleet.add_argument("--tenants", type=int, default=32,
                       help="concurrent drive sessions (default: 32)")
    fleet.add_argument("--frames", type=int, default=4,
                       help="frames per drive (default: 4)")
    fleet.add_argument("--queries-per-frame", type=int, default=64,
                       help="query rows per tenant between frames "
                       "(default: 64)")
    fleet.add_argument("--rows-per-request", type=int, default=8)
    fleet.add_argument("--distinct-drives", type=int, default=4,
                       help="distinct synthetic drives scanned; tenants "
                       "replay them round-robin (default: 4)")
    fleet.add_argument("--max-resident", type=int, default=32,
                       help="resident session bound; beyond it idle "
                       "sessions spill to disk (default: 32)")
    fleet.add_argument("--eviction", choices=("lru", "cost-aware"),
                       default="lru")
    fleet.add_argument("--tenant-share", type=float, default=0.5,
                       help="fraction of --max-queue rows one tenant may "
                       "hold in flight (default: 0.5)")
    fleet.add_argument("--fail-on-rebuild", action="store_true",
                       help="exit 1 unless the run was zero-rebuild: one "
                       "full build per tenant, every later frame "
                       "incremental")
    # Fleet frames are per-tenant: default to a small frame so the
    # default invocation replays 32 drives in seconds, not minutes.
    # --shards/--sharding/--replicas do not apply (sessions are
    # unsharded; each tenant is a shard of the fleet).
    fleet.set_defaults(func=_cmd_fleet, points=2000)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
