"""Serving-layer knobs: batching, sharding, admission, degradation.

One frozen dataclass carries every parameter of a
:class:`~repro.serve.server.KnnServer`, grouped the way the request
path meets them: admission first, then batch formation, then the shard
pool, then the failure-handling and degradation policies.  See
``docs/serving.md`` for how the knobs interact.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.kdtree.config import KdTreeConfig
from repro.registry import warn_deprecated_alias

#: Queue-fraction thresholds of the degradation ladder (levels 1..3).
DEFAULT_DEGRADE_THRESHOLDS = (0.5, 0.75, 0.9)

#: Shared-memory segment names must stay portable across platforms:
#: POSIX gives them one flat namespace, so keep them short and plain.
_SHM_PREFIX_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


@dataclass(frozen=True)
class ExecutionConfig:
    """How shard work is executed: the backend and its lifecycle knobs.

    Mirrors the ``engine=`` / ``builder=`` knob pattern: ``backend``
    names an entry in the execution-backend registry
    (:mod:`repro.serve.backends`), and every backend answers
    bit-identically — the choice is purely about *where* the engine
    kernels run.

    Parameters
    ----------
    backend:
        ``"thread"`` — shard replicas are threads in the server
        process; the engine's NumPy/BLAS kernels release the GIL for
        the heavy parts, but Python-level work stays on one core.
        ``"process"`` — shard replicas are worker processes attached to
        shared-memory snapshots of the shard trees (one physical tree
        copy per machine); batches cross a queue, answers come back
        over a result queue, and the canonical top-k merge stays in the
        coordinator.  Pick ``process`` for multi-core throughput on
        frames worth the ~seconds of worker start-up; pick ``thread``
        for tiny frames, single-core machines, or latency-floor
        sensitivity (see ``docs/serving.md``).
    processes:
        Worker processes *per shard* under the process backend (the
        process analogue of ``n_replicas``).  ``None`` inherits
        ``n_replicas``.
    shm_prefix:
        Prefix of the generation-stamped shared-memory segment names
        (``{prefix}-{uid}-g{generation}-s{shard}``).  Letters, digits,
        ``.``, ``_``, ``-`` only.
    join_timeout_s:
        How long shutdown waits for a worker process to exit after its
        sentinel before escalating to ``terminate()`` (and ``kill()``).
    unlink_timeout_s:
        How long shutdown waits for the result collector to drain
        worker farewells (final per-process counters) before segments
        are unlinked regardless.
    """

    backend: str = "thread"
    processes: int | None = None
    shm_prefix: str = "quicknn"
    join_timeout_s: float = 5.0
    unlink_timeout_s: float = 5.0

    def __post_init__(self):
        from repro.serve.backends import BACKENDS

        BACKENDS.check(self.backend)
        if self.processes is not None and self.processes < 1:
            raise ValueError("processes must be positive (or None)")
        if not _SHM_PREFIX_RE.match(self.shm_prefix):
            raise ValueError(
                "shm_prefix must be 1-64 characters of [A-Za-z0-9._-], "
                f"got {self.shm_prefix!r}"
            )
        if self.join_timeout_s <= 0:
            raise ValueError("join_timeout_s must be positive")
        if self.unlink_timeout_s <= 0:
            raise ValueError("unlink_timeout_s must be positive")

    def processes_per_shard(self, n_replicas: int) -> int:
        """Worker processes each shard gets (``None`` = ``n_replicas``)."""
        return self.processes if self.processes is not None else n_replicas


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of a kNN serving instance.

    Parameters
    ----------
    n_shards:
        Number of point shards.  Every query fans out to all shards and
        the per-shard top-k lists are merged, so exact-mode answers are
        shard-count invariant.
    sharding:
        ``"round-robin"`` (interleaved point ids, balanced by
        construction) or ``"spatial"`` (recursive median cuts, keeps
        shards compact so their top-k lists prune well).
    n_replicas:
        Worker threads per shard.  Extra replicas drain the shard queue
        in parallel and give hedged re-submissions somewhere to run.
    max_batch_size:
        Query rows the micro-batcher coalesces into one engine call.
    max_delay_s:
        Batch-formation deadline: a non-full batch is dispatched once
        its oldest request has waited this long.  ``0`` dispatches
        immediately (no coalescing latency, no batching benefit under
        sequential load).
    max_queue:
        Admission bound, in queued query *rows*.  A submission that
        would exceed it is shed with :class:`~repro.serve.errors.Overloaded`.
    request_timeout_s:
        Per-request deadline measured from admission; a request still
        unanswered past it fails with
        :class:`~repro.serve.errors.RequestTimeout`.  ``None`` disables.
    hedge_delay_s:
        If a shard has not answered a batch after this long, the batch
        is re-enqueued on the same shard's queue for another replica to
        pick up (first answer wins).  ``None`` disables hedging.
    max_retries:
        How many times a failed shard computation is re-enqueued before
        the batch's requests fail with the underlying error.
    approx_budget:
        Extra bucket visits (beyond the home leaf) an approx-mode query
        may spend at load level 0 — the serving analogue of the BBF
        "checks" budget, served through the batched engine's
        ``max_visits``.  The degradation ladder tightens it under load.
    degrade_thresholds:
        Queue-fraction boundaries of degradation levels 1..3.  Below
        the first threshold the server runs at level 0 (full budgets);
        past the last it is one step from shedding.
    tree:
        Per-shard k-d tree build configuration (PR 4's vectorized
        direct-to-flat builder runs per shard).
    execution:
        Execution-backend selection and lifecycle knobs
        (:class:`ExecutionConfig`): thread replicas in-process, or
        worker processes over shared-memory snapshots.
    worker:
        **Deprecated** alias for ``execution.backend`` (the pre-
        :class:`ExecutionConfig` spelling).  Passing it emits a
        ``DeprecationWarning`` and folds the value into ``execution``.
    """

    n_shards: int = 1
    sharding: str = "round-robin"
    n_replicas: int = 1
    max_batch_size: int = 256
    max_delay_s: float = 0.002
    max_queue: int = 4096
    request_timeout_s: float | None = 5.0
    hedge_delay_s: float | None = None
    max_retries: int = 1
    approx_budget: int = 4
    degrade_thresholds: tuple[float, float, float] = DEFAULT_DEGRADE_THRESHOLDS
    tree: KdTreeConfig = field(default_factory=KdTreeConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    worker: str | None = None

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        from repro.serve.sharding import STRATEGIES

        STRATEGIES.check(self.sharding)
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge_delay_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.approx_budget < 0:
            raise ValueError("approx_budget must be non-negative")
        if len(self.degrade_thresholds) != 3 or any(
            not (0.0 < t <= 1.0) for t in self.degrade_thresholds
        ) or list(self.degrade_thresholds) != sorted(self.degrade_thresholds):
            raise ValueError(
                "degrade_thresholds must be three ascending fractions in (0, 1]"
            )
        if self.worker is not None:
            # stacklevel=4 attributes the warning to the ServeConfig(...)
            # call site (warn -> helper -> __post_init__ -> generated
            # __init__ -> caller), keeping the repo's own escalated-
            # warning filter pointed at code using the old spelling.
            warn_deprecated_alias(
                "ServeConfig(worker=...)",
                "ServeConfig(execution=ExecutionConfig(backend=...))",
                stacklevel=4,
            )
            folded = replace(self.execution, backend=self.worker)
            object.__setattr__(self, "execution", folded)
            object.__setattr__(self, "worker", None)
