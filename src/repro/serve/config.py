"""Serving-layer knobs: batching, sharding, admission, degradation.

One frozen dataclass carries every parameter of a
:class:`~repro.serve.server.KnnServer`, grouped the way the request
path meets them: admission first, then batch formation, then the shard
pool, then the failure-handling and degradation policies.  See
``docs/serving.md`` for how the knobs interact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kdtree.config import KdTreeConfig

#: Queue-fraction thresholds of the degradation ladder (levels 1..3).
DEFAULT_DEGRADE_THRESHOLDS = (0.5, 0.75, 0.9)


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of a kNN serving instance.

    Parameters
    ----------
    n_shards:
        Number of point shards.  Every query fans out to all shards and
        the per-shard top-k lists are merged, so exact-mode answers are
        shard-count invariant.
    sharding:
        ``"round-robin"`` (interleaved point ids, balanced by
        construction) or ``"spatial"`` (recursive median cuts, keeps
        shards compact so their top-k lists prune well).
    n_replicas:
        Worker threads per shard.  Extra replicas drain the shard queue
        in parallel and give hedged re-submissions somewhere to run.
    max_batch_size:
        Query rows the micro-batcher coalesces into one engine call.
    max_delay_s:
        Batch-formation deadline: a non-full batch is dispatched once
        its oldest request has waited this long.  ``0`` dispatches
        immediately (no coalescing latency, no batching benefit under
        sequential load).
    max_queue:
        Admission bound, in queued query *rows*.  A submission that
        would exceed it is shed with :class:`~repro.serve.errors.Overloaded`.
    request_timeout_s:
        Per-request deadline measured from admission; a request still
        unanswered past it fails with
        :class:`~repro.serve.errors.RequestTimeout`.  ``None`` disables.
    hedge_delay_s:
        If a shard has not answered a batch after this long, the batch
        is re-enqueued on the same shard's queue for another replica to
        pick up (first answer wins).  ``None`` disables hedging.
    max_retries:
        How many times a failed shard computation is re-enqueued before
        the batch's requests fail with the underlying error.
    approx_budget:
        Extra bucket visits (beyond the home leaf) an approx-mode query
        may spend at load level 0 — the serving analogue of the BBF
        "checks" budget, served through the batched engine's
        ``max_visits``.  The degradation ladder tightens it under load.
    degrade_thresholds:
        Queue-fraction boundaries of degradation levels 1..3.  Below
        the first threshold the server runs at level 0 (full budgets);
        past the last it is one step from shedding.
    tree:
        Per-shard k-d tree build configuration (PR 4's vectorized
        direct-to-flat builder runs per shard).
    worker:
        Worker execution model.  ``"thread"`` is the only supported
        value: shard workers are threads, and the engine's NumPy/BLAS
        kernels release the GIL for the heavy parts.  (A process pool
        would have to ship every batch across pickling boundaries —
        measured slower than threads for this workload shape.)
    """

    n_shards: int = 1
    sharding: str = "round-robin"
    n_replicas: int = 1
    max_batch_size: int = 256
    max_delay_s: float = 0.002
    max_queue: int = 4096
    request_timeout_s: float | None = 5.0
    hedge_delay_s: float | None = None
    max_retries: int = 1
    approx_budget: int = 4
    degrade_thresholds: tuple[float, float, float] = DEFAULT_DEGRADE_THRESHOLDS
    tree: KdTreeConfig = field(default_factory=KdTreeConfig)
    worker: str = "thread"

    def __post_init__(self):
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if self.sharding not in ("round-robin", "spatial"):
            raise ValueError(
                f"unknown sharding {self.sharding!r}; "
                "expected 'round-robin' or 'spatial'"
            )
        if self.n_replicas < 1:
            raise ValueError("n_replicas must be positive")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.max_queue < 1:
            raise ValueError("max_queue must be positive")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ValueError("hedge_delay_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.approx_budget < 0:
            raise ValueError("approx_budget must be non-negative")
        if len(self.degrade_thresholds) != 3 or any(
            not (0.0 < t <= 1.0) for t in self.degrade_thresholds
        ) or list(self.degrade_thresholds) != sorted(self.degrade_thresholds):
            raise ValueError(
                "degrade_thresholds must be three ascending fractions in (0, 1]"
            )
        if self.worker != "thread":
            raise ValueError(
                f"unsupported worker model {self.worker!r}; only 'thread' "
                "workers are implemented (see ServeConfig docstring)"
            )
