"""Fleet load generation: N concurrent synthetic drives over sessions.

The single-server load generators (:mod:`repro.serve.loadgen`) answer
"how fast is one index"; :func:`run_fleet` answers the session layer's
question — *can a bounded machine host many concurrent drives, each an
evolving index, without ever rebuilding one from scratch?*  Each tenant
thread replays a deterministic synthetic drive from
:mod:`repro.datasets.drive`: it observes every frame through
:meth:`~repro.serve.sessions.SessionManager.observe_frame` (first frame
builds, the rest take the incremental fast path) and fires a burst of
closed-loop queries between frames, tallied per tenant with the exact
:class:`~repro.serve.loadgen.Tally` classification rules.

Scan generation — not serving — is the expensive part of a synthetic
drive, so ``distinct_drives`` bounds it: frames are generated once per
distinct drive and tenant ``i`` replays drive ``i % distinct_drives``.
Tenants sharing a drive still have fully independent sessions; only the
input point clouds coincide.

The report carries the zero-rebuild evidence: with an enabled metrics
registry, ``full_builds`` (delta of ``build.calls``) must equal the
tenant count — one initial build per session, none after — and
``incremental_updates`` (delta of ``build.incremental.calls``) must be
``n_tenants * (n_frames - 1)``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.drive import DriveConfig, generate_drive, scanner_for
from repro.obs import get_registry
from repro.serve.errors import Overloaded
from repro.serve.loadgen import LoadgenReport, Tally
from repro.serve.sessions import SessionConfig, SessionManager

#: Counters whose before/after delta the fleet report captures (the
#: zero-rebuild evidence plus incremental-work accounting).
_BUILD_COUNTERS = (
    "build.calls",
    "build.incremental.calls",
    "build.incremental.points",
    "build.incremental.points_rebuilt",
    "build.incremental.merges",
    "build.incremental.splits",
)


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of one fleet replay.

    ``n_tenants`` drives run concurrently, each ``n_frames`` long with
    roughly ``points_per_frame`` ground-removed points per frame.
    Between frames each tenant submits ``queries_per_frame`` query rows
    in ``rows_per_request``-row requests, closed loop.  ``session``
    configures the hosting :class:`~repro.serve.sessions.SessionManager`
    (residency bounds, eviction policy, fairness quota).
    """

    n_tenants: int = 32
    n_frames: int = 4
    points_per_frame: int = 2000
    queries_per_frame: int = 64
    rows_per_request: int = 8
    k: int = 8
    mode: str = "exact"
    seed: int = 0
    distinct_drives: int = 4
    scene_kind: str = "street"
    ego_speed: float = 5.0
    session: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self):
        if self.n_tenants < 1:
            raise ValueError("n_tenants must be positive")
        if self.n_frames < 1:
            raise ValueError("n_frames must be positive")
        if self.points_per_frame < 1:
            raise ValueError("points_per_frame must be positive")
        if self.queries_per_frame < 0:
            raise ValueError("queries_per_frame must be non-negative")
        if self.rows_per_request < 1:
            raise ValueError("rows_per_request must be positive")
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.mode not in ("exact", "approx"):
            raise ValueError("mode must be 'exact' or 'approx'")
        if not (1 <= self.distinct_drives):
            raise ValueError("distinct_drives must be positive")

    def tenant_name(self, i: int) -> str:
        return f"drive-{i:03d}"


@dataclass
class FleetReport:
    """Outcome of one fleet replay."""

    duration_s: float
    n_tenants: int
    n_frames: int
    per_tenant: dict[str, LoadgenReport]
    frames_observed: int
    frame_errors: int
    #: Counter deltas over the run (empty when no registry was active).
    build_counters: dict[str, float]
    manager_stats: dict

    @property
    def full_builds(self) -> float | None:
        """``build.calls`` delta; ``None`` without an enabled registry."""
        return self.build_counters.get("build.calls")

    @property
    def incremental_updates(self) -> float | None:
        return self.build_counters.get("build.incremental.calls")

    @property
    def zero_rebuild(self) -> bool | None:
        """True iff no session ever rebuilt after its initial frame.

        One ``build.calls`` per tenant (session creation) and one
        ``build.incremental.calls`` per subsequent frame is the
        steady-state signature; anything above the build floor means a
        session fell off the incremental fast path.
        """
        if not self.build_counters:
            return None
        return (
            self.full_builds == self.n_tenants
            and self.incremental_updates
            == self.n_tenants * (self.n_frames - 1)
        )

    def aggregate(self) -> dict:
        """Summed outcome counts across tenants."""
        totals = {
            "offered": 0, "completed": 0, "shed": 0, "timed_out": 0,
            "errors": 0, "degraded": 0, "rows_completed": 0,
        }
        for report in self.per_tenant.values():
            for key in totals:
                totals[key] += getattr(report, key)
        return totals

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "n_tenants": self.n_tenants,
            "n_frames": self.n_frames,
            "frames_observed": self.frames_observed,
            "frame_errors": self.frame_errors,
            "aggregate": self.aggregate(),
            "build": dict(self.build_counters),
            "zero_rebuild": self.zero_rebuild,
            "manager": self.manager_stats,
            "per_tenant": {
                tenant: report.as_dict()
                for tenant, report in self.per_tenant.items()
            },
        }


def _drive_frames(config: FleetConfig) -> list[list[np.ndarray]]:
    """World-frame point arrays of each distinct drive (scanned once)."""
    drives = []
    for d in range(config.distinct_drives):
        drive = DriveConfig(
            n_frames=config.n_frames,
            target_points=config.points_per_frame,
            ego_speed=config.ego_speed,
            scene_seed=config.seed + d,
            scene_kind=config.scene_kind,
            scanner=scanner_for(config.points_per_frame, config.scene_kind),
        )
        drives.append(
            [
                np.ascontiguousarray(frame.cloud.xyz)
                for frame in generate_drive(drive, seed=config.seed + d)
            ]
        )
    return drives


def _queries_for(frame: np.ndarray, n: int, rng) -> np.ndarray:
    """Perturbed resamples of the frame — the successive-frame workload."""
    picks = rng.integers(0, frame.shape[0], size=n)
    return frame[picks] + rng.normal(scale=0.05, size=(n, 3))


def run_fleet(
    config: FleetConfig | None = None,
    *,
    manager: SessionManager | None = None,
    clock=time.perf_counter,
) -> FleetReport:
    """Replay ``n_tenants`` concurrent drives through a session manager.

    Creates (and closes) a :class:`SessionManager` from
    ``config.session`` unless one is passed in.  One thread per tenant:
    observe a frame, fire the between-frame query burst closed loop,
    repeat.  Sheds are counted at admission and never retried, so the
    per-tenant reports expose exactly what admission control did.
    """
    config = config or FleetConfig()
    drives = _drive_frames(config)
    obs = get_registry()
    before = (
        {name: obs.counter(name).value for name in _BUILD_COUNTERS}
        if obs.enabled
        else {}
    )

    own_manager = manager is None
    if own_manager:
        manager = SessionManager(config.session)
    tallies = {
        config.tenant_name(i): Tally() for i in range(config.n_tenants)
    }
    frames_observed = [0] * config.n_tenants
    frame_errors = [0] * config.n_tenants

    def _tenant(i: int) -> None:
        tenant = config.tenant_name(i)
        tally = tallies[tenant]
        rng = np.random.default_rng(config.seed + 1000 + i)
        frames = drives[i % config.distinct_drives]
        for frame in frames:
            try:
                manager.observe_frame(tenant, frame)
                frames_observed[i] += 1
            except Exception:
                frame_errors[i] += 1
                continue
            if config.queries_per_frame == 0:
                continue
            queries = _queries_for(frame, config.queries_per_frame, rng)
            for start in range(0, queries.shape[0], config.rows_per_request):
                request = queries[start:start + config.rows_per_request]
                with tally.lock:
                    tally.offered += 1
                try:
                    future = manager.submit(
                        tenant, request, config.k, mode=config.mode
                    )
                except Overloaded:
                    with tally.lock:
                        tally.shed += 1
                    continue
                future.exception()      # closed loop: wait for the answer
                tally.record(future)

    started = clock()
    threads = [
        threading.Thread(target=_tenant, args=(i,), name=f"fleet-{i}")
        for i in range(config.n_tenants)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = clock() - started

    build_counters = (
        {
            name: obs.counter(name).value - before[name]
            for name in _BUILD_COUNTERS
        }
        if obs.enabled
        else {}
    )
    manager_stats = manager.stats()
    if own_manager:
        manager.close()
    return FleetReport(
        duration_s=duration,
        n_tenants=config.n_tenants,
        n_frames=config.n_frames,
        per_tenant={
            tenant: tally.report("fleet-closed-loop", duration)
            for tenant, tally in tallies.items()
        },
        frames_observed=int(sum(frames_observed)),
        frame_errors=int(sum(frame_errors)),
        build_counters=build_counters,
        manager_stats=manager_stats,
    )
