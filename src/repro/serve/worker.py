"""Worker-process main loop for the ``process`` execution backend.

One worker serves one shard slot: it pulls tasks off its shard's task
queue, attaches the named shared-memory segment for the task's
generation (cached across tasks — attach is a one-time ``mmap`` plus
header decode, the arrays themselves are zero-copy views), runs the
same :meth:`~repro.serve.sharding.ShardState.search` the thread
backend runs, and ships ``(indices, distances)`` back on its private
result pipe.  The pipe has exactly one writer (this worker) and one
reader (a coordinator-side collector thread), so there is no shared
lock a SIGKILLed sibling could take to its grave — and the pipe's EOF
doubles as the worker's death notice.  All policy — degradation,
hedging, retries, timeouts, merge — stays in the coordinator; a worker
is a pure compute loop.

Observability: when the coordinator runs with profiling on it passes
``obs_config`` and the worker enables its own live
:class:`~repro.obs.registry.MetricsRegistry` (labelled
``quicknn-worker-<id>``) before touching any instrumented code, so
every ``engine.*`` counter and histogram the search path emits lands
worker-side.  Each reply piggybacks the registry's ``flush_delta()``
payload and the farewell carries a final flush, so the coordinator's
registry converges to machine-wide truth — and because a flush rides
on *every* message, a SIGKILLed worker's already-flushed deltas
survive it.  With tracing on, each task executes inside a
``serve.worker.search`` span stamped with the job id and the request
ids it serves, carrying this process's real pid/tid into the merged
Chrome trace.

Robustness rules:

* a task for a segment that cannot be attached (vanished mid-swap,
  corrupt, whatever) produces an ``error`` message, never a worker
  crash — the coordinator's retry/timeout machinery owns the outcome;
* SIGTERM is converted to a clean exit (farewell message with the
  final counters, mappings closed) so ``terminate()`` during shutdown
  does not strand attachments;
* unpicklable exceptions are re-wrapped as
  :class:`~repro.serve.errors.WorkerError` so the error path itself
  can never fail to cross the process boundary.

Per-process counters (cumulative, piggybacked on every message and on
the farewell) surface in the coordinator as ``serve.worker.<id>.*``
gauges: ``tasks``, ``rows``, ``errors``, ``attaches``, ``pid``.
"""

from __future__ import annotations

import os
import pickle
import signal

from repro.serve import shm as shm_mod
from repro.serve.errors import WorkerError

#: Generations a worker keeps attached (current + one behind, so a
#: hedge or retry of a pre-swap job never pays a re-attach).
KEEP_GENERATIONS = 2


def _portable_exc(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives pickling, else a WorkerError."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return WorkerError(f"{type(exc).__name__}: {exc}")


class _ShardCache:
    """Attached generations of one shard, newest-first eviction."""

    def __init__(self, counters: dict):
        self._counters = counters
        self._states: dict[int, tuple] = {}  # generation -> (state, shm)

    def get(self, generation: int, segment_name: str):
        from repro.kdtree.snapshot import Snapshot
        from repro.serve.sharding import ShardState

        entry = self._states.get(generation)
        if entry is None:
            payload, handle = shm_mod.attach_segment(segment_name)
            state = ShardState.from_snapshot(Snapshot.from_payload(payload))
            self._states[generation] = entry = (state, handle)
            self._counters["attaches"] += 1
            self._evict(keep_from=generation - KEEP_GENERATIONS + 1)
        return entry[0]

    def _evict(self, keep_from: int) -> None:
        for generation in [g for g in self._states if g < keep_from]:
            _, handle = self._states.pop(generation)
            shm_mod.close_attachment(handle)

    def close(self) -> None:
        states, self._states = self._states, {}
        for _, handle in states.values():
            shm_mod.close_attachment(handle)


def _graceful_term(signum, frame):  # pragma: no cover - signal path
    """SIGTERM -> SystemExit, so ``finally`` sends the farewell."""
    raise SystemExit(0)


def _enable_obs(worker_id: str, obs_config: dict | None):
    """Install this worker's live registry when the coordinator profiles.

    Must run before any instrumented code executes — the engine reads
    the active registry per call, so enabling first guarantees every
    ``engine.*`` metric of every task lands in this registry.
    """
    if not obs_config or not obs_config.get("enabled"):
        return None
    from repro.obs.registry import MetricsRegistry, set_registry

    registry = MetricsRegistry(
        trace=bool(obs_config.get("trace")),
        process_label=f"quicknn-worker-{worker_id}",
    )
    set_registry(registry)
    return registry


def worker_main(worker_id: str, slot: int, task_queue, result_conn,
                obs_config: dict | None = None) -> None:
    """Entry point of one shard-replica worker process.

    ``task_queue`` yields ``(job_id, generation, segment_name, q, k,
    budget, request_ids, query_kind, radius)`` tuples, or ``None`` as
    the shutdown sentinel.  ``query_kind`` selects the modality:
    ``"knn"`` runs :meth:`~repro.serve.sharding.ShardState.search`
    (payload ``(indices, distances)``), ``"radius"`` runs
    :meth:`~repro.serve.sharding.ShardState.search_radius` (payload
    the ``(indices, distances, offsets)`` CSR triplet).  Replies on
    ``result_conn`` (this worker's private pipe) are
    ``(kind, worker_id, job_id, slot, payload, counters, metrics)``
    with kind ``result`` (payload as above), ``error``
    (payload the exception), or ``bye`` (farewell); ``metrics`` is the
    worker registry's ``flush_delta()`` payload, or ``None`` when the
    coordinator is not profiling (``obs_config`` absent/disabled).
    """
    signal.signal(signal.SIGTERM, _graceful_term)
    registry = _enable_obs(worker_id, obs_config)
    counters = {
        "pid": os.getpid(),
        "tasks": 0,
        "rows": 0,
        "errors": 0,
        "attaches": 0,
    }

    def _flush():
        return registry.flush_delta() if registry is not None else None

    cache = _ShardCache(counters)
    try:
        while True:
            task = task_queue.get()
            if task is None:
                return
            (job_id, generation, segment_name, q, k, budget,
             request_ids, query_kind, radius) = task
            try:
                state = cache.get(generation, segment_name)

                def _compute():
                    if query_kind == "radius":
                        return state.search_radius(q, radius, k)
                    return state.search(q, k, budget)

                if registry is not None:
                    span_args = {"job_id": job_id, "worker": worker_id}
                    if request_ids is not None:
                        span_args["request_ids"] = request_ids
                    with registry.phase("serve.worker.search", args=span_args):
                        payload = _compute()
                else:
                    payload = _compute()
            except Exception as exc:
                counters["errors"] += 1
                result_conn.send(
                    ("error", worker_id, job_id, slot,
                     _portable_exc(exc), dict(counters), _flush())
                )
                continue
            counters["tasks"] += 1
            counters["rows"] += int(q.shape[0])
            result_conn.send(
                ("result", worker_id, job_id, slot,
                 payload, dict(counters), _flush())
            )
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        return
    finally:
        cache.close()
        try:
            result_conn.send(
                ("bye", worker_id, None, slot, None, dict(counters), _flush())
            )
        except Exception:  # pragma: no cover - pipe already torn down
            pass
        try:
            result_conn.close()
        except Exception:  # pragma: no cover - best-effort
            pass
