"""Typed failures of the serving layer.

Every way :mod:`repro.serve` refuses or abandons a request is a
distinct exception type, so callers (and the load generator) can count
sheds, timeouts, and shutdowns separately — and so overload is never
reported as a wrong answer, only as a typed rejection.
"""

from __future__ import annotations


class ServeError(RuntimeError):
    """Base class of every serving-layer failure."""


class Overloaded(ServeError):
    """Admission control shed the request: the intake queue was full.

    Raised *synchronously* by ``submit`` — a shed request never enters
    the queue, so shedding costs the server nothing but this exception.
    ``queue_depth`` / ``max_queue`` record the pressure at rejection
    time (in queued query rows).
    """

    def __init__(self, queue_depth: int, max_queue: int):
        self.queue_depth = queue_depth
        self.max_queue = max_queue
        super().__init__(
            f"serve queue full ({queue_depth}/{max_queue} query rows); "
            "request shed"
        )


class RequestTimeout(ServeError):
    """The request missed its deadline before a result was merged.

    Set as the future's exception; ``waited_s`` is how long the request
    had been in the system when it was abandoned.
    """

    def __init__(self, waited_s: float, timeout_s: float):
        self.waited_s = waited_s
        self.timeout_s = timeout_s
        super().__init__(
            f"request timed out after {waited_s:.3f}s (deadline {timeout_s:.3f}s)"
        )


class ServerClosed(ServeError):
    """The server was shut down; submissions and pending work fail fast."""

    def __init__(self, message: str = "server is closed"):
        super().__init__(message)


class WorkerError(ServeError):
    """A worker-process failure whose original exception could not cross
    the process boundary (unpicklable); carries its type and message.

    Retried like any other shard failure; surfaces on the request
    future only after ``max_retries`` re-enqueues are exhausted.
    """

