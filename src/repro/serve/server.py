"""KnnServer: sharded, micro-batched kNN serving with graceful degradation.

The request path, in the order a query row experiences it:

1. **Admission** — ``submit`` validates the rows and offers them to the
   bounded :class:`~repro.serve.batcher.MicroBatcher`; a full queue
   sheds the request synchronously with
   :class:`~repro.serve.errors.Overloaded` (a typed refusal, never a
   degraded-silently answer).
2. **Batch formation** — the dispatcher thread pulls a batch when it
   fills or its deadline lapses, reads the queue fraction to pick the
   degradation level, drops already-expired requests, and groups the
   rest by ``(k, effective budget)`` so each group is one engine call.
3. **Fan-out** — each group becomes a job holding a snapshot of the
   current shard generation; one task per shard goes to the
   *execution backend* (:mod:`repro.serve.backends`): thread replicas
   computing in-process, or worker processes computing against
   shared-memory snapshots of the shard trees.  Either way the shard
   computes its local top-k through the batched engine and translates
   local ids to global ids.
4. **Merge** — when the last shard answers, the coordinator merges the
   per-shard lists with the canonical
   :func:`~repro.serve.sharding.merge_topk` rule and resolves every
   request's future with a :class:`ServeResponse`.  The merge always
   runs in the coordinator, so exact answers are bit-identical to the
   unsharded engine for any shard count **and either backend**.
5. **Failure handling** — a monitor thread enforces per-request
   deadlines (:class:`~repro.serve.errors.RequestTimeout`), re-submits
   slow shard tasks for hedging (first answer wins), and worker errors
   are retried ``max_retries`` times before the job's requests fail
   with the underlying error.

Degradation ladder (queue fraction against ``degrade_thresholds``):

====== ======================== =====================================
level  approx requests          exact requests with ``allow_degraded``
====== ======================== =====================================
0      budget = ``approx_budget``  unbounded exact
1      budget halved               bounded: ``4 × approx_budget`` visits
2      budget quartered            bounded: ``approx_budget`` visits
3      budget 0 (home leaf only)   budget 0 (home leaf only)
====== ======================== =====================================

Exact requests *without* ``allow_degraded`` are never degraded — they
run the unbounded exact search at every level and rely on admission
control alone.  Every response reports the level and budget it was
served at, so a degraded answer is always labelled as one.

Warm handoff: :meth:`KnnServer.update_reference` rebuilds the shard
trees (PR 4's :func:`~repro.kdtree.flat_build.build_flat`, one build
per shard), *publishes* the new generation to the execution backend
(under the process backend: new generation-stamped shared-memory
segments), and swaps it in atomically.  In-flight jobs keep the
generation they captured at batch formation; a superseded generation's
execution resources are retired only when its last in-flight job
drains (deferred unlink), so no worker ever faces a segment that
vanished mid-query.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.kdtree.flat_build import build_flat
from repro.kdtree.search import QueryResult
from repro.kdtree.snapshot import Snapshot
from repro.obs import get_registry
from repro.serve.backends import make_backend
from repro.serve.batcher import MicroBatcher, ServeRequest
from repro.serve.config import ServeConfig
from repro.serve.errors import RequestTimeout, ServerClosed
from repro.serve.sharding import (
    ShardPlan,
    ShardState,
    make_plan,
    merge_radius,
    merge_topk,
)

_SNAPSHOT_GLOB = "shard-*.npz"


@dataclass(frozen=True)
class ServeResponse:
    """One answered request, with the conditions it was answered under.

    ``indices`` holds *global* reference-point ids (``-1`` padding),
    ``distances`` the exact float64 distances from the engine kernel.
    ``served`` names the search actually run (``"exact"``,
    ``"approx"``, or ``"degraded"`` when load tightened the budget or
    downgraded an opted-in exact request); ``budget`` is the
    ``max_visits`` it ran with (``None`` = unbounded exact).
    """

    indices: np.ndarray
    distances: np.ndarray
    mode: str               # what the caller asked for
    served: str             # what actually ran
    degrade_level: int
    budget: int | None
    latency_s: float
    generation: int
    request_id: int = -1    # the trace id assigned at admission

    @property
    def degraded(self) -> bool:
        return self.served == "degraded"

    def as_query_result(self) -> QueryResult:
        return QueryResult(indices=self.indices, distances=self.distances)


@dataclass(frozen=True)
class RadiusServeResponse:
    """One answered radius request: ragged CSR rows, always exact.

    ``indices`` / ``distances`` are the flat per-pair arrays and
    ``offsets`` the row boundaries — the same layout as
    :class:`~repro.query.result.RaggedResult` (:meth:`as_ragged`
    wraps them).  Rows are in the canonical order (ascending distance,
    ties by ascending global id), each capped at its nearest
    ``max_neighbors``.  Radius requests never ride the degradation
    ladder — a partial radius answer has no honest meaning — so
    ``served`` is always ``"exact"``; overload protection is admission
    control alone, with each row charged ``max_neighbors`` queue rows.
    """

    indices: np.ndarray
    distances: np.ndarray
    offsets: np.ndarray
    radius: float
    max_neighbors: int
    degrade_level: int
    latency_s: float
    generation: int
    request_id: int = -1
    served: str = "exact"

    def as_ragged(self):
        from repro.query.result import RaggedResult

        return RaggedResult(
            indices=self.indices,
            distances=self.distances,
            offsets=self.offsets,
        )


class _BatchJob:
    """One engine call's worth of coalesced rows, fanned out to shards."""

    __slots__ = (
        "job_id", "requests", "request_ids", "q", "k", "budget", "shards",
        "generation", "degrade_level", "lock", "results", "shard_done",
        "hedged", "attempts", "n_done", "finished", "dispatched_at",
        "kind", "radius",
    )

    def __init__(self, job_id, requests, q, k, budget, shards, generation,
                 degrade_level, dispatched_at, kind="knn", radius=0.0):
        self.job_id: int = job_id
        self.requests: list[ServeRequest] = requests
        self.request_ids: list[int] = [r.request_id for r in requests]
        self.q = q                       # (rows, 3) concatenated queries
        self.k = k
        self.budget = budget             # None = unbounded exact
        self.kind: str = kind            # "knn" | "radius"
        self.radius: float = radius      # ball radius for kind == "radius"
        self.shards: tuple[ShardState, ...] = shards
        self.generation = generation
        self.degrade_level = degrade_level
        self.lock = threading.Lock()
        n = len(shards)
        #: Per-shard result payload: ``(indices, distances)`` for kNN,
        #: ``(indices, distances, offsets)`` CSR for radius.
        self.results: list[tuple | None] = [None] * n
        self.shard_done = [False] * n
        self.hedged = [False] * n
        self.attempts = [0] * n
        self.n_done = 0
        self.finished = False
        self.dispatched_at = dispatched_at


def _try_set_result(future: Future, value) -> bool:
    try:
        future.set_result(value)
        return True
    except Exception:       # already resolved (timeout/shutdown won the race)
        return False


def _try_set_exception(future: Future, exc: BaseException) -> bool:
    try:
        future.set_exception(exc)
        return True
    except Exception:
        return False


class KnnServer:
    """Concurrent kNN service over any engine-backed reference cloud.

    Usage::

        with KnnServer(frame_xyz, ServeConfig(n_shards=4)) as server:
            fut = server.submit(rows, k=8)           # Future[ServeResponse]
            resp = server.query(rows, k=8)           # submit + wait

    All public methods are thread-safe.  See the module docstring for
    the request path and the degradation ladder, and
    :class:`~repro.serve.config.ExecutionConfig` for the thread/process
    execution choice.
    """

    def __init__(
        self,
        reference,
        config: ServeConfig | None = None,
        *,
        clock=time.monotonic,
    ):
        self.config = config or ServeConfig()
        self._clock = clock
        xyz = np.ascontiguousarray(np.asarray(reference, dtype=np.float64))
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        plan = make_plan(xyz, self.config.n_shards, self.config.sharding)
        shards = tuple(
            ShardState(tree=build_flat(xyz[ids], self.config.tree)[0],
                       global_ids=ids)
            for ids in plan.global_ids
        )
        self._boot(plan, shards)

    @classmethod
    def from_snapshots(cls, directory, config: ServeConfig | None = None,
                       *, clock=time.monotonic) -> "KnnServer":
        """Warm-start from :meth:`save_snapshots` files — no rebuild.

        ``config.n_shards`` must match the snapshot count (the default
        config is widened to the snapshot count automatically when left
        at 1).  Answers are bit-identical to the server that saved the
        snapshots: the flat trees round-trip exactly.
        """
        from dataclasses import replace

        paths = sorted(Path(directory).glob(_SNAPSHOT_GLOB))
        if not paths:
            raise FileNotFoundError(
                f"no {_SNAPSHOT_GLOB} snapshots under {directory}"
            )
        config = config or ServeConfig()
        if config.n_shards == 1 and len(paths) > 1:
            config = replace(config, n_shards=len(paths))
        if config.n_shards != len(paths):
            raise ValueError(
                f"config.n_shards={config.n_shards} but found "
                f"{len(paths)} snapshot shards under {directory}"
            )
        shards = tuple(
            ShardState.from_snapshot(Snapshot.load(path)) for path in paths
        )
        return cls.from_shards(shards, config, clock=clock)

    @classmethod
    def from_shards(cls, shards, config: ServeConfig | None = None,
                    *, clock=time.monotonic) -> "KnnServer":
        """Boot a server over prebuilt :class:`ShardState`s — no build.

        The session layer uses this to promote an incrementally-updated
        tree (or a restored spill snapshot) straight into a serving
        instance.  ``config.n_shards`` must match the shard count (the
        default config is widened automatically when left at 1).
        """
        from dataclasses import replace

        shards = tuple(shards)
        if not shards:
            raise ValueError("from_shards needs at least one shard")
        config = config or ServeConfig()
        if config.n_shards == 1 and len(shards) > 1:
            config = replace(config, n_shards=len(shards))
        if config.n_shards != len(shards):
            raise ValueError(
                f"config.n_shards={config.n_shards} but got "
                f"{len(shards)} prebuilt shards"
            )
        plan = ShardPlan(
            strategy=config.sharding,
            global_ids=tuple(s.global_ids for s in shards),
        )
        self = cls.__new__(cls)
        self.config = config
        self._clock = clock
        self._boot(plan, shards)
        return self

    def _boot(self, plan: ShardPlan, shards: tuple[ShardState, ...]) -> None:
        self._plan = plan
        self._shards = shards
        self._generation = 0
        self._swap_lock = threading.Lock()
        self._rebuild_lock = threading.Lock()
        self._obs_lock = threading.Lock()
        self._closed = False
        self._inflight: dict[int, _BatchJob] = {}
        self._inflight_lock = threading.Lock()
        self._gen_inflight: dict[int, int] = {}
        self._retired_gens: set[int] = set()
        self._job_ids = itertools.count()
        self._request_ids = itertools.count()
        self._started_at = self._clock()
        #: Always-on internal counters (shed/timeouts/retries/…) — the
        #: structured ``stats()`` surface must not depend on obs being on.
        self._stat_counters: dict[str, float] = {}
        self._batcher = MicroBatcher(
            max_batch_size=self.config.max_batch_size,
            max_delay_s=self.config.max_delay_s,
            max_queue=self.config.max_queue,
            clock=self._clock,
        )
        self._backend = make_backend(self.config.execution.backend, self)
        self._backend.start(shards)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True,
        )
        self._dispatcher.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serve-monitor", daemon=True,
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def generation(self) -> int:
        """Bumped by every warm handoff; reported on each response."""
        return self._generation

    def submit(self, queries, k: int, *, mode: str = "exact",
               allow_degraded: bool = False) -> Future:
        """Admit rows for service; returns a ``Future[ServeResponse]``.

        Raises :class:`~repro.serve.errors.Overloaded` synchronously if
        admission control sheds the request, and
        :class:`~repro.serve.errors.ServerClosed` after :meth:`close`.
        """
        if mode not in ("exact", "approx"):
            raise ValueError(f"mode must be 'exact' or 'approx', got {mode!r}")
        if k < 1:
            raise ValueError("k must be positive")
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3 or q.shape[0] == 0:
            raise ValueError("queries must have shape (m, 3) with m >= 1")
        request = ServeRequest(
            xyz=np.ascontiguousarray(q), k=k, mode=mode,
            allow_degraded=allow_degraded,
            request_id=next(self._request_ids),
        )
        if self.config.request_timeout_s is not None:
            request.deadline = self._clock() + self.config.request_timeout_s
        try:
            with get_registry().phase(
                "serve.admit",
                args={"request_id": request.request_id,
                      "rows": request.n_rows},
            ):
                self._batcher.submit(request)
        except Exception:
            self._count("serve.shed", 1)
            raise
        self._count("serve.requests", 1)
        self._count("serve.rows", request.n_rows)
        return request.future

    def query(self, queries, k: int, *, mode: str = "exact",
              allow_degraded: bool = False,
              timeout: float | None = None) -> ServeResponse:
        """Blocking :meth:`submit`: wait for and return the response."""
        return self.submit(
            queries, k, mode=mode, allow_degraded=allow_degraded
        ).result(timeout=timeout)

    def submit_radius(self, queries, radius: float, *,
                      max_neighbors: int) -> Future:
        """Admit a batched radius request; ``Future[RadiusServeResponse]``.

        ``max_neighbors`` is mandatory: a radius row's cost is
        unbounded without a cap, and admission control charges each row
        ``max_neighbors`` queue rows so overload pressure tracks the
        worst-case answer size.  Radius requests never degrade — the
        response is always the exact capped answer or a typed refusal.
        """
        radius = float(radius)
        if not radius >= 0.0:
            raise ValueError("radius must be non-negative")
        if max_neighbors < 1:
            raise ValueError(
                "max_neighbors must be a positive row cap (radius "
                "requests are admitted by their worst-case answer size)"
            )
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if q.ndim != 2 or q.shape[1] != 3 or q.shape[0] == 0:
            raise ValueError("queries must have shape (m, 3) with m >= 1")
        request = ServeRequest(
            xyz=np.ascontiguousarray(q), k=max_neighbors, mode="exact",
            allow_degraded=False, kind="radius", radius=radius,
            request_id=next(self._request_ids),
        )
        if self.config.request_timeout_s is not None:
            request.deadline = self._clock() + self.config.request_timeout_s
        try:
            with get_registry().phase(
                "serve.admit",
                args={"request_id": request.request_id,
                      "rows": request.n_rows},
            ):
                self._batcher.submit(request)
        except Exception:
            self._count("serve.shed", 1)
            raise
        self._count("serve.requests", 1)
        self._count("serve.radius_requests", 1)
        self._count("serve.rows", request.n_rows)
        return request.future

    def query_radius(self, queries, radius: float, *, max_neighbors: int,
                     timeout: float | None = None) -> "RadiusServeResponse":
        """Blocking :meth:`submit_radius`: wait for and return the response."""
        return self.submit_radius(
            queries, radius, max_neighbors=max_neighbors
        ).result(timeout=timeout)

    def update_reference(self, points) -> dict:
        """Warm handoff: rebuild every shard from ``points``, swap atomically.

        Queries keep being served against the old shard generation
        during the rebuild; the new generation is *published* to the
        execution backend first (under the process backend: fresh
        generation-stamped shared-memory segments), then the swap is
        one tuple assignment.  In-flight jobs finish on the generation
        they captured; the old generation's execution resources are
        retired once its last in-flight job drains.  Returns a summary
        (new generation, shard sizes, rebuild wall time).
        """
        xyz = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if xyz.ndim != 2 or xyz.shape[1] != 3:
            raise ValueError("points must have shape (N, 3)")
        started = self._clock()
        plan = make_plan(xyz, self.config.n_shards, self.config.sharding)
        obs = get_registry()
        with self._rebuild_lock:
            with self._obs_lock, obs.timer("serve.rebuild"):
                shards = tuple(
                    ShardState(tree=build_flat(xyz[ids], self.config.tree)[0],
                               global_ids=ids)
                    for ids in plan.global_ids
                )
            next_generation = self._swap_in(plan, shards)
        self._maybe_retire(next_generation - 1)
        self._count("serve.rebuilds", 1)
        return {
            "generation": next_generation,
            "n_points": int(xyz.shape[0]),
            "shard_sizes": [int(ids.size) for ids in plan.global_ids],
            "rebuild_s": self._clock() - started,
        }

    def update_reference_shards(self, shards) -> dict:
        """Warm handoff to *prebuilt* shard states — no tree build.

        The generation-stamped swap machinery of :meth:`update_reference`
        without its rebuild: the caller supplies ready
        :class:`ShardState`s (the session layer's incremental
        ``update_tree`` fast path produces them), they are published to
        the execution backend, swapped in atomically, and the superseded
        generation retires when its last in-flight job drains.
        """
        shards = tuple(shards)
        if len(shards) != self.config.n_shards:
            raise ValueError(
                f"config.n_shards={self.config.n_shards} but got "
                f"{len(shards)} prebuilt shards"
            )
        started = self._clock()
        plan = ShardPlan(
            strategy=self.config.sharding,
            global_ids=tuple(s.global_ids for s in shards),
        )
        with self._rebuild_lock:
            next_generation = self._swap_in(plan, shards)
        self._maybe_retire(next_generation - 1)
        self._count("serve.handoffs", 1)
        return {
            "generation": next_generation,
            "n_points": plan.n_points,
            "shard_sizes": [int(ids.size) for ids in plan.global_ids],
            "handoff_s": self._clock() - started,
        }

    def _swap_in(self, plan: ShardPlan, shards: tuple[ShardState, ...]) -> int:
        """Publish-then-swap under ``_rebuild_lock`` (held by caller)."""
        with self._swap_lock:
            next_generation = self._generation + 1
        self._backend.publish(next_generation, shards)
        with self._swap_lock:
            self._plan = plan
            self._shards = shards
            self._generation = next_generation
        return next_generation

    def update_reference_async(self, points) -> Future:
        """Run :meth:`update_reference` on a background thread."""
        future: Future = Future()

        def _run():
            try:
                future.set_result(self.update_reference(points))
            except BaseException as exc:  # surfaced via the future
                future.set_exception(exc)

        threading.Thread(target=_run, name="serve-rebuild", daemon=True).start()
        return future

    def save_snapshots(self, directory) -> list[Path]:
        """Persist every shard tree (plus its global-id map) under ``directory``.

        One ``shard-NNN.npz`` per shard in the
        :class:`~repro.kdtree.snapshot.Snapshot` format with the id
        translation as an extra array; :meth:`from_snapshots` restores
        a server answering bit-identically.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._swap_lock:
            shards = self._shards
        paths = []
        for slot, shard in enumerate(shards):
            path = directory / f"shard-{slot:03d}.npz"
            shard.snapshot().save(path)
            paths.append(path)
        return paths

    def stats(self) -> dict:
        """Structured operational snapshot.

        Always available — the lifetime ``counters`` (requests, rows,
        completions, sheds, timeouts, retries, hedges, errors …) are
        maintained by the server itself, independent of whether the
        observability registry is enabled.  ``execution`` is the
        backend's own :meth:`~repro.serve.backends.ExecutionBackend.
        describe` snapshot (under the process backend it includes
        worker pids, liveness, and per-worker cumulative counters).
        """
        with self._swap_lock:
            plan = self._plan
            generation = self._generation
        with self._inflight_lock:
            inflight = len(self._inflight)
        with self._obs_lock:
            counters = dict(self._stat_counters)
        execution = self._backend.describe()
        return {
            "plan": plan.describe(),
            "generation": generation,
            "queue_rows": self._batcher.depth(),
            "queue_fill": self._batcher.fill_fraction(),
            "inflight_jobs": inflight,
            "degrade_level": self._degrade_level(self._batcher.fill_fraction()),
            "execution": execution,
            "n_worker_threads": execution.get("n_worker_threads", 0),
            "counters": counters,
            "uptime_s": self._clock() - self._started_at,
            "closed": self._closed,
        }

    def close(self) -> None:
        """Stop serving: shed the queue, fail in-flight work, stop workers.

        Reliable under either backend: worker processes are reaped
        (join → terminate → kill) and every shared-memory segment is
        unlinked.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for request in self._batcher.close():
            _try_set_exception(request.future, ServerClosed())
        with self._inflight_lock:
            jobs = list(self._inflight.values())
            self._inflight.clear()
            self._gen_inflight.clear()
        for job in jobs:
            with job.lock:
                job.finished = True
                requests = list(job.requests)
            for request in requests:
                _try_set_exception(request.future, ServerClosed())
        self._backend.close()
        self._dispatcher.join(timeout=5.0)
        self._monitor.join(timeout=5.0)

    def __enter__(self) -> "KnnServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Degradation policy
    # ------------------------------------------------------------------
    def _degrade_level(self, fill: float) -> int:
        t1, t2, t3 = self.config.degrade_thresholds
        if fill >= t3:
            return 3
        if fill >= t2:
            return 2
        if fill >= t1:
            return 1
        return 0

    def _plan_budget(self, request: ServeRequest, level: int) -> tuple[int | None, str]:
        """Map (request, load level) to an engine budget and a label."""
        b = self.config.approx_budget
        if request.mode == "approx":
            budget = (b, b // 2, b // 4, 0)[level]
            return budget, ("approx" if budget == b else "degraded")
        if not request.allow_degraded or level == 0:
            return None, "exact"
        budget = (None, 4 * b, b, 0)[level]
        return budget, "degraded"

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._batcher.next_batch(timeout=0.1)
            if batch is None:
                if self._closed:
                    return
                continue
            if self._closed:
                for request in batch:
                    _try_set_exception(request.future, ServerClosed())
                return
            try:
                self._dispatch_batch(batch)
            except Exception as exc:  # defensive: never kill the dispatcher
                for request in batch:
                    _try_set_exception(request.future, exc)
                self._count("serve.errors", len(batch))

    def _dispatch_batch(self, batch: list[ServeRequest]) -> None:
        now = self._clock()
        # Pressure at batch formation: the popped rows still count —
        # measuring after the pop would let one large batch drain the
        # signal and mask the very overload it represents.
        batch_rows = sum(r.n_rows for r in batch)
        fill = (batch_rows + self._batcher.depth()) / self.config.max_queue
        level = self._degrade_level(fill)
        obs = get_registry()
        self._count("serve.batches", 1)
        if obs.enabled:
            with self._obs_lock:
                obs.gauge("serve.queue_depth").set(self._batcher.depth())
                obs.gauge("serve.degrade_level").set(level)
                obs.distribution("serve.batch_fill").observe(batch_rows)

        live: list[tuple[ServeRequest, int | None, str]] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                waited = now - request.arrival
                if _try_set_exception(
                    request.future,
                    RequestTimeout(waited, self.config.request_timeout_s),
                ):
                    self._count("serve.timeouts", 1)
                continue
            if request.kind == "radius":
                # Radius rows never degrade: a truncated ball has no
                # honest meaning, and each row prepaid its worst case
                # at admission.
                budget, served = None, "exact"
            else:
                budget, served = self._plan_budget(request, level)
            live.append((request, budget, served))

        groups: dict[tuple, list[tuple[ServeRequest, str]]] = {}
        for request, budget, served in live:
            key = (request.kind, request.k, budget, request.radius)
            groups.setdefault(key, []).append((request, served))

        with self._swap_lock:
            shards = self._shards
            generation = self._generation
        for (kind, k, budget, radius), members in groups.items():
            requests = [r for r, _ in members]
            for request, served in members:
                request.served = served
            job = _BatchJob(
                job_id=next(self._job_ids),
                requests=requests,
                q=np.concatenate([r.xyz for r in requests], axis=0),
                k=k,
                budget=budget,
                shards=shards,
                generation=generation,
                degrade_level=level,
                dispatched_at=now,
                kind=kind,
                radius=radius,
            )
            with self._inflight_lock:
                self._inflight[job.job_id] = job
                self._gen_inflight[generation] = (
                    self._gen_inflight.get(generation, 0) + 1
                )
            with obs.phase(
                "serve.dispatch",
                args={"job_id": job.job_id,
                      "request_ids": job.request_ids,
                      "rows": int(job.q.shape[0])},
            ):
                for slot in range(len(shards)):
                    self._backend.submit(job, slot)

    # ------------------------------------------------------------------
    # Shard completion (called by the execution backend)
    # ------------------------------------------------------------------
    def _job_for(self, job_id: int) -> _BatchJob | None:
        """In-flight job by id, or ``None`` for a late/duplicate result."""
        with self._inflight_lock:
            return self._inflight.get(job_id)

    def _shard_completed(
        self, job: _BatchJob, slot: int, payload: tuple,
    ) -> None:
        """A shard's local result arrived; merge when it was the last.

        ``payload`` is the shard's result tuple for the job's kind:
        ``(indices, distances)`` top-k arrays for kNN,
        ``(indices, distances, offsets)`` CSR for radius.
        """
        last = False
        with job.lock:
            if not job.finished and not job.shard_done[slot]:
                job.shard_done[slot] = True
                job.results[slot] = payload
                job.n_done += 1
                last = job.n_done == len(job.shards)
        if last:
            self._finish_job(job)

    def _shard_failed(self, job: _BatchJob, slot: int, exc: Exception) -> None:
        """A shard computation failed; retry or fail the whole job."""
        with job.lock:
            if job.finished or job.shard_done[slot]:
                return
            job.attempts[slot] += 1
            retry = job.attempts[slot] <= self.config.max_retries
            if not retry:
                job.finished = True
        if retry:
            self._count("serve.retries", 1)
            self._backend.submit(job, slot)
            return
        self._drop_inflight(job)
        for request in job.requests:
            _try_set_exception(request.future, exc)
        self._count("serve.errors", len(job.requests))

    def _finish_job(self, job: _BatchJob) -> None:
        with job.lock:
            if job.finished:
                return
            job.finished = True
        self._drop_inflight(job)
        if job.kind == "radius":
            self._finish_radius_job(job)
            return
        parts = job.results
        obs = get_registry()
        with obs.phase(
            "serve.merge",
            args={"job_id": job.job_id, "request_ids": job.request_ids},
        ):
            indices, distances = merge_topk(
                [p[0] for p in parts], [p[1] for p in parts], job.k
            )
        now = self._clock()
        row = 0
        for request in job.requests:
            rows = slice(row, row + request.n_rows)
            row += request.n_rows
            response = ServeResponse(
                indices=indices[rows],
                distances=distances[rows],
                mode=request.mode,
                served=request.served,
                degrade_level=job.degrade_level,
                budget=job.budget,
                latency_s=now - request.arrival,
                generation=job.generation,
                request_id=request.request_id,
            )
            if _try_set_result(request.future, response):
                self._count("serve.completed", 1)
                if response.degraded:
                    self._count("serve.degraded", 1)
                if obs.enabled:
                    with self._obs_lock:
                        obs.histogram("serve.latency_ms").observe(
                            response.latency_s * 1e3
                        )

    def _finish_radius_job(self, job: _BatchJob) -> None:
        """Merge per-shard CSR parts and slice per-request sub-results."""
        obs = get_registry()
        n_rows = int(job.q.shape[0])
        with obs.phase(
            "serve.merge",
            args={"job_id": job.job_id, "request_ids": job.request_ids},
        ):
            merged = merge_radius(job.results, n_rows, job.k)
        now = self._clock()
        row = 0
        for request in job.requests:
            row0, row1 = row, row + request.n_rows
            row = row1
            lo = int(merged.offsets[row0])
            hi = int(merged.offsets[row1])
            response = RadiusServeResponse(
                indices=merged.indices[lo:hi],
                distances=merged.distances[lo:hi],
                offsets=merged.offsets[row0 : row1 + 1] - lo,
                radius=job.radius,
                max_neighbors=job.k,
                # Always 0: radius answers never degrade, and reporting
                # the queue-pressure ladder level here would read as a
                # truncated ball.
                degrade_level=0,
                latency_s=now - request.arrival,
                generation=job.generation,
                request_id=request.request_id,
            )
            if _try_set_result(request.future, response):
                self._count("serve.completed", 1)
                if obs.enabled:
                    with self._obs_lock:
                        obs.histogram("serve.latency_ms").observe(
                            response.latency_s * 1e3
                        )

    def _drop_inflight(self, job: _BatchJob) -> None:
        with self._inflight_lock:
            if self._inflight.pop(job.job_id, None) is None:
                return  # close() already swept it
            remaining = self._gen_inflight.get(job.generation, 0) - 1
            if remaining <= 0:
                self._gen_inflight.pop(job.generation, None)
            else:
                self._gen_inflight[job.generation] = remaining
        self._maybe_retire(job.generation)

    def _maybe_retire(self, generation: int) -> None:
        """Deferred retirement: a superseded generation with no in-flight
        jobs releases its execution resources (process backend: its
        shared-memory segments are unlinked)."""
        with self._swap_lock:
            if generation >= self._generation:
                return
        with self._inflight_lock:
            if self._gen_inflight.get(generation, 0) > 0:
                return
            if generation in self._retired_gens:
                return
            self._retired_gens.add(generation)
        self._backend.retire(generation)

    # ------------------------------------------------------------------
    # Monitor: timeouts and hedging
    # ------------------------------------------------------------------
    def _monitor_tick(self) -> None:
        now = self._clock()
        for request in self._batcher.expire(now):
            if _try_set_exception(
                request.future,
                RequestTimeout(now - request.arrival, self.config.request_timeout_s),
            ):
                self._count("serve.timeouts", 1)
        with self._inflight_lock:
            jobs = list(self._inflight.values())
        for job in jobs:
            for request in job.requests:
                if (
                    request.deadline is not None
                    and now >= request.deadline
                    and not request.future.done()
                ):
                    if _try_set_exception(
                        request.future,
                        RequestTimeout(
                            now - request.arrival, self.config.request_timeout_s
                        ),
                    ):
                        self._count("serve.timeouts", 1)
            hedge_after = self.config.hedge_delay_s
            if hedge_after is None:
                continue
            if now - job.dispatched_at < hedge_after:
                continue
            for slot in range(len(job.shards)):
                fire = False
                with job.lock:
                    if (
                        not job.finished
                        and not job.shard_done[slot]
                        and not job.hedged[slot]
                    ):
                        job.hedged[slot] = True
                        fire = True
                if fire:
                    self._count("serve.hedges", 1)
                    self._backend.submit(job, slot)

    def _monitor_loop(self) -> None:
        horizons = [
            h for h in (self.config.hedge_delay_s, self.config.request_timeout_s)
            if h is not None
        ]
        tick = min(min(horizons) / 4 if horizons else 0.05, 0.05)
        tick = max(tick, 0.001)
        while not self._closed:
            time.sleep(tick)
            try:
                self._monitor_tick()
            except Exception:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------
    def _count(self, name: str, n: int) -> None:
        obs = get_registry()
        with self._obs_lock:
            self._stat_counters[name] = self._stat_counters.get(name, 0) + n
            if obs.enabled:
                obs.counter(name).inc(n)

    def _ingest(self, mapping: dict, prefix: str) -> None:
        """Record a worker's cumulative counters as ``prefix.*`` gauges."""
        obs = get_registry()
        if obs.enabled:
            with self._obs_lock:
                obs.ingest(mapping, prefix=prefix)

    def _merge_worker_metrics(self, worker_id: str, payload: dict) -> None:
        """Fold one worker's ``flush_delta`` payload into the registry.

        Called by the process backend's collector threads *before* the
        result that carried the payload is completed, so by the time a
        request's future resolves the worker-side metrics behind it are
        already merged.  Each delta lands twice: once on the
        machine-wide names (``engine.*`` totals become backend-agnostic
        truth) and once under ``worker.<id>.*`` for the per-worker
        breakdown.  ``merge_from`` is not internally synchronized, so
        both passes run under the server's obs lock.
        """
        obs = get_registry()
        if not obs.enabled:
            return
        with self._obs_lock:
            obs.merge_from(payload)
            obs.merge_from(payload, prefix=f"worker.{worker_id}")
