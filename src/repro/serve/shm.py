"""Shared-memory segments for zero-copy shard snapshots.

The process execution backend keeps **one physical copy** of every
shard's :class:`~repro.kdtree.engine.FlatKdTree` per machine: the
coordinator lays the snapshot payload out in a
``multiprocessing.shared_memory`` segment, and each worker process
attaches the same segment and wraps numpy views directly over the
mapped buffer — no pickling, no per-worker copy of the tree.

Segment layout (self-describing, so a worker needs only the name)::

    [magic 'QKNN'][header-length u64][header JSON][pad to 64]
    [array 0, 64-byte aligned][array 1, ...]

The JSON header records every array's name, dtype string, shape, and
byte offset.  Self-description is what makes warm handoff simple: a
task carries only ``(generation, segment name)`` and a worker that has
not seen that generation attaches and decodes it on demand — there is
no side channel that could race with a swap.

Lifecycle discipline (see ``docs/serving.md``):

* the **coordinator** creates segments (:func:`create_segment`) and is
  the only unlinker (:func:`unlink_segment`);
* **workers** attach (:func:`attach_segment`) and close their mapping
  when they evict a generation or exit — never unlink;
* every created segment is tracked module-wide and unlinked by an
  ``atexit`` hook as a last resort, so an abandoned server (or a
  coordinator dying on an unhandled signal that still runs ``atexit``)
  does not leak ``/dev/shm`` entries.

A note on the ``multiprocessing`` resource tracker: on Python < 3.13
*attaching* registers the segment just like creating does, but spawn
children inherit the coordinator's tracker process and its cache is a
set — so the coordinator's create and every worker's attach collapse
into one tracker entry, and the coordinator's unlink retires it.
Nobody here unregisters manually: a worker-side unregister would
delete the shared entry and make the coordinator's unlink race a
``KeyError`` inside the tracker, and the entry is also the crash
safety net (a coordinator killed before cleanup leaves the tracker to
unlink the segment at process-tree exit).
"""

from __future__ import annotations

import atexit
import json
import threading
from multiprocessing import shared_memory

import numpy as np

MAGIC = b"QKNN"
_ALIGN = 64
_HEADER_FIXED = len(MAGIC) + 8  # magic + u64 header length

#: Segments created by this process, by name (the atexit safety net).
_created: dict[str, shared_memory.SharedMemory] = {}
_created_lock = threading.Lock()


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def create_segment(
    name: str, payload: dict[str, np.ndarray]
) -> shared_memory.SharedMemory:
    """Create segment ``name`` holding ``payload``, return the handle.

    The caller (the coordinator) owns the handle and must eventually
    :func:`unlink_segment` it.  Raises ``FileExistsError`` if the name
    is already in use — generation-stamped names make collisions a bug,
    not a race to resolve.
    """
    arrays = {key: np.ascontiguousarray(value) for key, value in payload.items()}
    entries = []
    offset = 0  # relative to the start of the data region
    for key, value in arrays.items():
        offset = _align(offset)
        entries.append(
            {
                "name": key,
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "offset": offset,
            }
        )
        offset += value.nbytes
    header = json.dumps({"version": 1, "arrays": entries}).encode()
    data_start = _align(_HEADER_FIXED + len(header))
    total = max(1, data_start + offset)

    shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    try:
        buf = shm.buf
        buf[: len(MAGIC)] = MAGIC
        buf[len(MAGIC):_HEADER_FIXED] = len(header).to_bytes(8, "little")
        buf[_HEADER_FIXED:_HEADER_FIXED + len(header)] = header
        for entry, value in zip(entries, arrays.values()):
            dest = np.ndarray(
                value.shape,
                dtype=value.dtype,
                buffer=buf,
                offset=data_start + entry["offset"],
            )
            dest[...] = value
            del dest  # release the buffer export before any close()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    with _created_lock:
        _created[shm.name] = shm
    return shm


def attach_segment(
    name: str,
) -> tuple[dict[str, np.ndarray], shared_memory.SharedMemory]:
    """Attach segment ``name``; return zero-copy views plus the handle.

    The returned arrays are views over the mapped buffer — valid until
    the handle is closed.  The caller must :func:`close_attachment` the
    handle (never unlink) when done.
    """
    shm = shared_memory.SharedMemory(name=name, create=False)
    buf = shm.buf
    if bytes(buf[: len(MAGIC)]) != MAGIC:
        shm.close()
        raise ValueError(f"segment {name!r} is not a QuickNN snapshot segment")
    header_len = int.from_bytes(bytes(buf[len(MAGIC):_HEADER_FIXED]), "little")
    header = json.loads(bytes(buf[_HEADER_FIXED:_HEADER_FIXED + header_len]))
    data_start = _align(_HEADER_FIXED + header_len)
    arrays = {
        entry["name"]: np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=buf,
            offset=data_start + entry["offset"],
        )
        for entry in header["arrays"]
    }
    return arrays, shm


def close_attachment(shm: shared_memory.SharedMemory) -> None:
    """Close a worker-side mapping, tolerating still-exported views.

    numpy views over ``shm.buf`` keep the buffer exported; if the
    caller could not drop every reference first, ``close`` raises
    ``BufferError`` and the mapping is reclaimed at process exit
    instead — acceptable for a worker that is shutting down anyway.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - view still referenced
        pass


def unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Coordinator-side teardown: close the mapping and remove the name.

    Idempotent and tolerant of a name that is already gone (a resource
    tracker or a second close may have raced us) — shutdown paths must
    never fail on cleanup.
    """
    with _created_lock:
        _created.pop(shm.name, None)
    try:
        shm.close()
    except BufferError:  # pragma: no cover - view still referenced
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def live_segments() -> list[str]:
    """Names of segments this process created and has not unlinked."""
    with _created_lock:
        return sorted(_created)


@atexit.register
def _unlink_stragglers() -> None:  # pragma: no cover - exit path
    with _created_lock:
        stragglers = list(_created.values())
        _created.clear()
    for shm in stragglers:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass
