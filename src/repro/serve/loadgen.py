"""Synthetic load generation against a :class:`~repro.serve.server.KnnServer`.

Two drive modes, matching the two questions you ask a serving layer:

* :func:`run_closed_loop` — ``concurrency`` submitter threads, each
  waiting for its previous answer before sending the next request.
  ``concurrency=1`` is the one-at-a-time baseline; raising it lets the
  micro-batcher coalesce, which is exactly the throughput win the
  batched engine exists for.  Throughput question: *how fast can it go?*
* :func:`run_open_loop` — Poisson arrivals at a fixed offered rate,
  submitted without waiting, the standard way to expose queueing,
  shedding, and tail latency.  Latency question: *what happens at a
  given load, including overload?*

Both return a :class:`LoadgenReport` with completion/shed/timeout/error
counts and latency percentiles; the typed serve errors are counted
separately so an overloaded run is distinguishable from a broken one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.errors import Overloaded, RequestTimeout
from repro.serve.server import KnnServer

#: Reported latency percentiles (percent).
PERCENTILES = (50.0, 90.0, 95.0, 99.0)


@dataclass
class LoadgenReport:
    """Outcome counts and latency distribution of one load run."""

    mode: str                    # "closed-loop" | "open-loop"
    duration_s: float
    offered: int                 # requests the generator tried to submit
    completed: int
    shed: int                    # typed Overloaded at admission
    timed_out: int               # typed RequestTimeout
    errors: int                  # anything else (must be 0 in a healthy run)
    degraded: int                # completed but served under a tightened budget
    rows_completed: int
    latencies_ms: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput_qps(self) -> float:
        """Completed query rows per second."""
        return self.rows_completed / self.duration_s if self.duration_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "errors": self.errors,
            "degraded": self.degraded,
            "rows_completed": self.rows_completed,
            "throughput_qps": self.throughput_qps,
            "latency_ms": {
                f"p{int(q)}": self.percentile(q) for q in PERCENTILES
            }
            | {
                "mean": float(np.mean(self.latencies_ms))
                if self.latencies_ms
                else 0.0
            },
        }


class Tally:
    """Thread-safe outcome accumulator shared by submitters and callbacks.

    Public so the fleet driver (:mod:`repro.serve.fleet`) can tally
    per-tenant outcomes with the exact same classification rules as the
    single-server load generators.
    """

    def __init__(self):
        self.lock = threading.Lock()
        self.offered = 0
        self.completed = 0
        self.shed = 0
        self.timed_out = 0
        self.errors = 0
        self.degraded = 0
        self.rows_completed = 0
        self.latencies_ms: list[float] = []

    def record(self, future) -> None:
        exc = future.exception()
        with self.lock:
            if exc is None:
                response = future.result()
                self.completed += 1
                self.rows_completed += response.indices.shape[0]
                self.latencies_ms.append(response.latency_s * 1e3)
                if response.degraded:
                    self.degraded += 1
            elif isinstance(exc, RequestTimeout):
                self.timed_out += 1
            else:
                self.errors += 1

    def report(self, mode: str, duration_s: float) -> LoadgenReport:
        return LoadgenReport(
            mode=mode,
            duration_s=duration_s,
            offered=self.offered,
            completed=self.completed,
            shed=self.shed,
            timed_out=self.timed_out,
            errors=self.errors,
            degraded=self.degraded,
            rows_completed=self.rows_completed,
            latencies_ms=self.latencies_ms,
        )


def _request_slices(queries: np.ndarray, rows_per_request: int) -> list[np.ndarray]:
    n = queries.shape[0]
    return [
        queries[start:start + rows_per_request]
        for start in range(0, n, rows_per_request)
    ]


def run_closed_loop(
    server: KnnServer,
    queries: np.ndarray,
    k: int,
    *,
    mode: str = "exact",
    concurrency: int = 1,
    rows_per_request: int = 1,
    allow_degraded: bool = False,
    clock=time.perf_counter,
) -> LoadgenReport:
    """Drive every query row through the server with bounded concurrency.

    The queries are cut into ``rows_per_request``-row requests and
    dealt round-robin to ``concurrency`` submitter threads; each thread
    waits for its answer before sending the next (closed loop), so the
    server's queue depth never exceeds ``concurrency`` requests.  Every
    row is offered exactly once — shed requests are counted, not
    retried — and with default-sized queues nothing sheds, making this
    the mode for throughput and identity measurements.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be positive")
    requests = _request_slices(
        np.atleast_2d(np.asarray(queries, dtype=np.float64)), rows_per_request
    )
    tally = Tally()
    tally.offered = len(requests)

    def _submitter(worker: int) -> None:
        for i in range(worker, len(requests), concurrency):
            try:
                future = server.submit(
                    requests[i], k, mode=mode, allow_degraded=allow_degraded
                )
            except Overloaded:
                with tally.lock:
                    tally.shed += 1
                continue
            future.exception()  # closed loop: wait for the answer
            tally.record(future)

    started = clock()
    threads = [
        threading.Thread(target=_submitter, args=(w,), name=f"loadgen-{w}")
        for w in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return tally.report("closed-loop", clock() - started)


def run_open_loop(
    server: KnnServer,
    queries: np.ndarray,
    k: int,
    *,
    rate_qps: float,
    duration_s: float,
    mode: str = "exact",
    rows_per_request: int = 1,
    allow_degraded: bool = False,
    seed: int = 0,
    drain_timeout_s: float = 10.0,
    clock=time.perf_counter,
) -> LoadgenReport:
    """Offer Poisson arrivals at ``rate_qps`` requests/s for ``duration_s``.

    Arrivals are submitted without waiting (open loop) — when the
    server falls behind, the queue grows and admission control sheds,
    which is the point: this mode measures latency percentiles and the
    shed/degrade behaviour *at* a load, not the peak rate.  Query rows
    are drawn round-robin from ``queries``.  After the offering window
    the run waits up to ``drain_timeout_s`` for stragglers.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    pool = _request_slices(
        np.atleast_2d(np.asarray(queries, dtype=np.float64)), rows_per_request
    )
    rng = np.random.default_rng(seed)
    tally = Tally()
    pending: list = []
    started = clock()
    deadline = started + duration_s
    next_at = started
    i = 0
    while True:
        now = clock()
        if now >= deadline:
            break
        if now < next_at:
            time.sleep(min(next_at - now, 0.001))
            continue
        next_at += rng.exponential(1.0 / rate_qps)
        tally.offered += 1
        try:
            future = server.submit(
                pool[i % len(pool)], k, mode=mode, allow_degraded=allow_degraded
            )
        except Overloaded:
            tally.shed += 1
        else:
            future.add_done_callback(tally.record)
            pending.append(future)
        i += 1
    drain_by = clock() + drain_timeout_s
    for future in pending:
        remaining = drain_by - clock()
        if remaining <= 0:
            break
        try:
            future.exception(timeout=remaining)
        except TimeoutError:
            break
    return tally.report("open-loop", clock() - started)
