"""Micro-batching intake: bounded queue, deadline-driven batch formation.

The batcher is the serving layer's front door.  ``submit`` applies
admission control synchronously — a request either enters the bounded
queue or is shed with :class:`~repro.serve.errors.Overloaded` before it
costs anything.  The dispatcher side calls ``next_batch``, which blocks
until a batch is *ready*: either ``max_batch_size`` query rows have
accumulated, or the oldest queued request has waited ``max_delay_s``.
That deadline is the latency price of coalescing — one knob trades
batch fill (throughput) against queueing delay, the classic
micro-batching trade the QuickNN hardware makes with its parallel
traversal units and this layer makes in software.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from concurrent.futures import Future

import numpy as np

from repro.serve.errors import Overloaded, ServerClosed


@dataclass
class ServeRequest:
    """One admitted unit of work: a few query rows plus routing flags.

    ``kind`` selects the query modality: ``"knn"`` (the default top-k
    path) or ``"radius"`` (batched range search returning ragged CSR
    rows).  A radius request stores its ``max_neighbors`` cap in ``k``
    and its radius in ``radius``; it is always served exact.
    """

    xyz: np.ndarray                 # (m, 3) float64 query rows
    k: int
    mode: str                       # "exact" | "approx"
    allow_degraded: bool
    kind: str = "knn"               # "knn" | "radius"
    radius: float = 0.0             # ball radius for kind == "radius"
    future: Future = field(default_factory=Future)
    arrival: float = 0.0            # monotonic admission time
    deadline: float | None = None   # monotonic; None = no timeout
    served: str = "exact"           # what actually ran (set at dispatch)
    request_id: int = -1            # server-assigned trace id (set at submit)

    @property
    def n_rows(self) -> int:
        return self.xyz.shape[0]

    @property
    def cost_rows(self) -> int:
        """Queue-accounting weight of this request, in answer rows.

        A kNN request costs its geometric row count.  A radius row can
        return up to ``max_neighbors`` (= ``k``) candidates, so it
        occupies ``rows × k`` budget — which is why the server requires
        a finite cap on served radius queries: unbounded rows would
        make admission control blind to their true cost.
        """
        if self.kind == "radius":
            return self.xyz.shape[0] * self.k
        return self.xyz.shape[0]


class MicroBatcher:
    """Bounded request queue with size/deadline batch formation.

    Thread-safe: any number of submitters, any number of dispatchers
    (the server runs one).  ``max_queue`` is measured in query *rows*
    (a multi-row request occupies its row count), so admission pressure
    tracks actual work, not request count.
    """

    def __init__(
        self,
        *,
        max_batch_size: int,
        max_delay_s: float,
        max_queue: int,
        clock=time.monotonic,
    ):
        self.max_batch_size = max_batch_size
        self.max_delay_s = max_delay_s
        self.max_queue = max_queue
        self._clock = clock
        self._queue: list[ServeRequest] = []
        self._rows_queued = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False

    # -- submitter side ------------------------------------------------
    def submit(self, request: ServeRequest) -> None:
        """Admit ``request`` or shed it; never blocks on a full queue."""
        with self._ready:
            if self._closed:
                raise ServerClosed("cannot submit: batcher is closed")
            if self._rows_queued + request.cost_rows > self.max_queue:
                raise Overloaded(self._rows_queued, self.max_queue)
            request.arrival = self._clock()
            self._queue.append(request)
            self._rows_queued += request.cost_rows
            self._ready.notify()

    def depth(self) -> int:
        """Queued query rows right now (the admission/degradation signal)."""
        with self._lock:
            return self._rows_queued

    def fill_fraction(self) -> float:
        """Queue occupancy in [0, 1] — the degradation ladder's input."""
        with self._lock:
            return self._rows_queued / self.max_queue

    # -- dispatcher side -----------------------------------------------
    def next_batch(self, timeout: float | None = None) -> list[ServeRequest] | None:
        """Block until a batch is ready; ``None`` on timeout or closed-empty.

        A batch is a prefix of the queue holding at most
        ``max_batch_size`` rows — except that a single oversized request
        always ships alone (the engine handles any batch size; splitting
        a request would split its future).
        """
        give_up = None if timeout is None else self._clock() + timeout
        with self._ready:
            while True:
                now = self._clock()
                if self._queue:
                    oldest_age = now - self._queue[0].arrival
                    if (
                        self._rows_queued >= self.max_batch_size
                        or oldest_age >= self.max_delay_s
                        or self._closed
                    ):
                        return self._pop_batch_locked()
                    wait = self.max_delay_s - oldest_age
                    if give_up is not None:
                        wait = min(wait, give_up - now)
                elif self._closed:
                    return None
                else:
                    wait = None if give_up is None else give_up - now
                if wait is not None and wait <= 0:
                    return None
                self._ready.wait(wait)

    def _pop_batch_locked(self) -> list[ServeRequest]:
        batch: list[ServeRequest] = []
        rows = 0
        while self._queue:
            nxt = self._queue[0].cost_rows
            if batch and rows + nxt > self.max_batch_size:
                break
            batch.append(self._queue.pop(0))
            rows += nxt
        self._rows_queued -= rows
        return batch

    def expire(self, now: float) -> list[ServeRequest]:
        """Remove and return queued requests whose deadline has passed.

        Called by the server's monitor so a doomed request frees its
        queue rows (and gets its typed timeout) without waiting for its
        batch to form.
        """
        with self._ready:
            expired = [
                r for r in self._queue
                if r.deadline is not None and now >= r.deadline
            ]
            if expired:
                self._queue = [
                    r for r in self._queue
                    if not (r.deadline is not None and now >= r.deadline)
                ]
                self._rows_queued = sum(r.cost_rows for r in self._queue)
                self._ready.notify_all()
            return expired

    # -- shutdown ------------------------------------------------------
    def close(self) -> list[ServeRequest]:
        """Refuse new submissions; return (and drop) whatever is queued.

        The caller owns failing the drained requests' futures.
        """
        with self._ready:
            self._closed = True
            drained, self._queue = self._queue, []
            self._rows_queued = 0
            self._ready.notify_all()
            return drained
