"""Shared registry/knob machinery for string-keyed choices.

Several subsystems expose the same shape of API: a string knob naming
one of a small set of implementations (``engine=`` in ``repro.kdtree``,
``builder=`` in :class:`~repro.kdtree.KdTreeConfig`, the execution
backend in ``repro.serve``, the index families behind
``repro.index.make_index``, scene kinds, sharding strategies).  Before
this module each one hand-rolled its own dict, alias folding, and
unknown-name error, so the messages drifted and aliases could warn more
than once.  :class:`Registry` is the single implementation; every knob
now resolves through it and rejects unknown names with the same
``unknown <kind> '<name>'; available: a, b, c`` message listing the full
set of canonical choices (plus aliases when any exist).

Deprecated-alias folding (``worker=``, ``save_flat``/``load_flat``,
bare ``max_leaves``) goes through :func:`warn_deprecated_alias`, so each
folding event emits exactly one :class:`DeprecationWarning` attributed
to the caller's call site.
"""

from __future__ import annotations

import re
import threading
import warnings
from typing import Callable, Generic, Iterator, TypeVar

__all__ = [
    "Registry",
    "warn_deprecated_alias",
]

T = TypeVar("T")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._\-]*$")


class Registry(Generic[T]):
    """A named mapping from string knob values to implementations.

    ``kind`` is the human-readable noun used in error messages
    ("knn index", "execution backend", "tree builder", ...).  Entries
    are registered under a canonical name plus optional aliases; lookup
    is by either, but :meth:`available` and error messages list only
    canonical names (with an alias summary appended when aliases
    exist), so registration order never changes what callers see.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}
        self._canonical: dict[str, str] = {}
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------

    def add(self, name: str, value: T, *aliases: str) -> T:
        """Register ``value`` under ``name`` (and ``aliases``)."""
        with self._lock:
            for key in (name, *aliases):
                if not _NAME_RE.match(key):
                    raise ValueError(
                        f"invalid {self.kind} name {key!r}; names must match "
                        f"{_NAME_RE.pattern}"
                    )
                if key in self._canonical:
                    raise ValueError(
                        f"duplicate {self.kind} name {key!r} "
                        f"(already registered for "
                        f"{self._canonical[key]!r})"
                    )
            self._entries[name] = value
            for key in (name, *aliases):
                self._canonical[key] = name
        return value

    def register(self, name: str, *aliases: str) -> Callable[[T], T]:
        """Decorator form of :meth:`add`."""

        def deco(value: T) -> T:
            self.add(name, value, *aliases)
            return value

        return deco

    # -- lookup ------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Fold ``name`` (canonical or alias) to its canonical name."""
        try:
            return self._canonical[name]
        except KeyError:
            raise self._unknown(name) from None

    def resolve(self, name: str) -> T:
        """Return the value registered under ``name`` (or an alias)."""
        return self._entries[self.canonical(name)]

    def check(self, name: str) -> str:
        """Validate ``name`` without resolving; returns the canonical
        form so config ``__post_init__`` hooks can both validate and
        fold in one call."""
        return self.canonical(name)

    def available(self) -> tuple[str, ...]:
        """Sorted tuple of canonical names (aliases excluded)."""
        return tuple(sorted(self._entries))

    def aliases(self) -> dict[str, str]:
        """Mapping of alias -> canonical name (canonical keys excluded)."""
        return {
            alias: canon
            for alias, canon in sorted(self._canonical.items())
            if alias != canon
        }

    def __contains__(self, name: object) -> bool:
        return name in self._canonical

    def __iter__(self) -> Iterator[str]:
        return iter(self.available())

    def __len__(self) -> int:
        return len(self._entries)

    # -- errors ------------------------------------------------------

    def _unknown(self, name: object) -> ValueError:
        msg = (
            f"unknown {self.kind} {name!r}; "
            f"available: {', '.join(self.available())}"
        )
        alias_map = self.aliases()
        if alias_map:
            folded = ", ".join(f"{a} -> {c}" for a, c in alias_map.items())
            msg += f" (aliases: {folded})"
        return ValueError(msg)


def warn_deprecated_alias(
    old: str, new: str, *, stacklevel: int = 3, extra: str = ""
) -> None:
    """Emit the single DeprecationWarning for a deprecated-alias fold.

    ``stacklevel`` should land the warning on the *caller* of the
    deprecated surface, not on repro internals — the test suite escalates
    DeprecationWarnings attributed to ``repro.*`` into errors, which is
    exactly what keeps internal code off deprecated paths.
    """
    msg = f"{old} is deprecated; use {new} instead"
    if extra:
        msg += f" ({extra})"
    warnings.warn(msg, DeprecationWarning, stacklevel=stacklevel)
