"""Terminal visualization helpers (no plotting dependencies).

ASCII renderings for quick inspection of clouds and results in a
matplotlib-free environment: a bird's-eye-view density map and a
sparkline for one-line trend displays in the harness output.
"""

from repro.viz.ascii import bev_view, sparkline

__all__ = ["bev_view", "sparkline"]
