"""ASCII renderings of point clouds and series."""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud

#: Density ramp from empty to saturated.
_RAMP = " .:-=+*#%@"

#: Eight-level block characters for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def bev_view(
    cloud: PointCloud,
    *,
    width: int = 72,
    height: int = 28,
    extent: float | None = None,
) -> str:
    """Bird's-eye-view density map of a cloud, centered on the origin.

    Each character cell shows the (log-scaled) point count of its x-y
    column; the sensor sits at the center, x points right, y points up.
    ``extent`` is the half-width in meters (auto-fitted by default).
    """
    if width < 2 or height < 2:
        raise ValueError("view must be at least 2 x 2 characters")
    if len(cloud) == 0:
        return "\n".join(" " * width for _ in range(height))
    xy = cloud.xyz[:, :2]
    if extent is None:
        extent = float(np.percentile(np.abs(xy), 99)) or 1.0
    # Map x in [-extent, extent] to columns, y likewise to rows (top=+y).
    cols = ((xy[:, 0] + extent) / (2 * extent) * (width - 1)).round().astype(int)
    rows = ((extent - xy[:, 1]) / (2 * extent) * (height - 1)).round().astype(int)
    inside = (cols >= 0) & (cols < width) & (rows >= 0) & (rows < height)
    grid = np.zeros((height, width), dtype=np.int64)
    np.add.at(grid, (rows[inside], cols[inside]), 1)

    peak = grid.max()
    if peak == 0:
        return "\n".join(" " * width for _ in range(height))
    levels = np.zeros_like(grid)
    occupied = grid > 0
    levels[occupied] = (
        1 + (np.log1p(grid[occupied]) / np.log1p(peak) * (len(_RAMP) - 2))
    ).astype(np.int64)
    levels = np.clip(levels, 0, len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[v] for v in row) for row in levels)


def sparkline(values, *, lo: float | None = None, hi: float | None = None) -> str:
    """One-line block-character trend of a numeric sequence."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    lo = float(data.min()) if lo is None else lo
    hi = float(data.max()) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[0] * data.size
    normalized = (data - lo) / (hi - lo)
    indices = np.clip((normalized * (len(_BLOCKS) - 1)).round().astype(int),
                      0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[i] for i in indices)
